// Near-data compute client APIs: one round trip per read-modify-write, no
// compaction window. Each mutating call mints an op-level dedup token, so
// unlike Write these ARE re-issued across transport reconnects — the server
// replays the recorded outcome of a duplicate delivery instead of applying
// it twice. StatusCompacting responses (the op raced a merge) are retried
// here with the corrected pointer, bounded by Retries/RetryBackoff, so
// callers see compaction only as latency, exactly like the read paths.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"corm/internal/core"
	"corm/internal/rpc"
)

// nextToken mints a per-operation dedup token: a random per-context base
// plus a sequence number. Token zero means "no dedup" on the wire, so it is
// never handed out.
func (c *Ctx) nextToken() uint64 {
	for {
		if t := c.tokenBase + c.tokenSeq.Add(1); t != 0 {
			return t
		}
	}
}

// callPushdown issues one pushdown op, folding pointer corrections into
// addr and retrying compaction-locked attempts with the corrected pointer.
// It returns the first 8 response-payload bytes by value (the pushdown
// payloads are ≤ 8 bytes) so the receive lease never escapes.
func (c *Ctx) callPushdown(op rpc.OpCode, addr *core.Addr, body []byte) (val [8]byte, n int, err error) {
	req := rpc.Request{Op: op, Addr: *addr, Payload: body}
	for attempt := 0; ; attempt++ {
		resp, lease, cerr := c.callLease(req, true)
		if cerr != nil {
			return val, 0, cerr
		}
		c.adopt(addr, resp.Addr)
		e := resp.Status.Err()
		n = copy(val[:], resp.Payload)
		lease.Release()
		if errors.Is(e, core.ErrCompacting) && attempt < c.Retries {
			clPushdownRetries.Inc()
			time.Sleep(c.RetryBackoff)
			req.Addr = *addr
			continue
		}
		return val, n, e
	}
}

// CAS atomically compares len(old) payload bytes at off with old and, on a
// match, overwrites them with new — server-side, under the object's block
// lock. A mismatch returns core.ErrConflict with nothing written; the
// caller re-reads and retries at its own pace.
func (c *Ctx) CAS(addr *core.Addr, off int, old, new []byte) error {
	r := rpc.CASReq{Token: c.nextToken(), Offset: uint32(off), Old: old, New: new}
	body := r.MarshalAppend(getScratch(0)[:0])
	_, _, err := c.callPushdown(rpc.OpCAS, addr, body)
	putScratch(body)
	return err
}

// FetchAdd atomically adds delta to the little-endian u64 at off inside the
// object, returning the pre-add value.
func (c *Ctx) FetchAdd(addr *core.Addr, off int, delta int64) (uint64, error) {
	r := rpc.FAddReq{Token: c.nextToken(), Offset: uint32(off), Delta: delta}
	body := r.MarshalAppend(getScratch(0)[:0])
	val, n, err := c.callPushdown(rpc.OpFetchAdd, addr, body)
	putScratch(body)
	if err != nil {
		return 0, err
	}
	if n != 8 {
		return 0, fmt.Errorf("client: FetchAdd: %d-byte response payload", n)
	}
	return binary.LittleEndian.Uint64(val[:]), nil
}

// PutIf writes the whole object payload only if its version still equals
// version — optimistic concurrency without a read-back. It returns the
// object's resulting version: the new one on success, the observed one
// alongside core.ErrConflict, which seeds the next attempt.
func (c *Ctx) PutIf(addr *core.Addr, version uint32, value []byte) (uint32, error) {
	return c.condWrite(addr, rpc.CondIfVersion, version, value)
}

// PutIfAbsent writes the object payload only if the object has never been
// written (version 0) — first-writer-wins initialization.
func (c *Ctx) PutIfAbsent(addr *core.Addr, value []byte) (uint32, error) {
	return c.condWrite(addr, rpc.CondIfAbsent, 0, value)
}

func (c *Ctx) condWrite(addr *core.Addr, mode uint8, version uint32, value []byte) (uint32, error) {
	r := rpc.CondWriteReq{Token: c.nextToken(), Mode: mode, Version: version, Value: value}
	body := r.MarshalAppend(getScratch(0)[:0])
	val, n, err := c.callPushdown(rpc.OpCondWrite, addr, body)
	putScratch(body)
	var ver uint32
	if n == 4 {
		ver = binary.LittleEndian.Uint32(val[:])
	}
	return ver, err
}

// ScanMatch is one object returned by ScanWhere: its current pointer (a
// scan doubles as bulk pointer correction) and a copy of its payload.
type ScanMatch struct {
	Addr    core.Addr
	Payload []byte
}

// ScanWhere runs a predicate-filtered scan over one size class on the
// server, returning every live object whose payload matches — one round
// trip instead of enumerate-then-read. pred is one of the rpc.Pred*
// predicates evaluated at off against arg; limit bounds the matches
// (0 = all that fit the response frame). The scan is compaction-aware:
// records moved by a concurrent merge are returned exactly once.
func (c *Ctx) ScanWhere(class int, pred uint8, off int, arg []byte, limit int) ([]ScanMatch, error) {
	r := rpc.ScanReq{Class: uint8(class), Pred: pred, Offset: uint32(off), Limit: uint32(limit), Arg: arg}
	body := r.MarshalAppend(getScratch(0)[:0])
	resp, lease, err := c.callLease(rpc.Request{Op: rpc.OpScan, Payload: body}, true)
	putScratch(body)
	if err != nil {
		return nil, err
	}
	if e := resp.Status.Err(); e != nil {
		lease.Release()
		return nil, e
	}
	subs, derr := rpc.DecodeBatchResponses(resp.Payload, rpc.GetSubResponses())
	if derr != nil {
		rpc.PutSubResponses(subs)
		lease.Release()
		return nil, derr
	}
	var matches []ScanMatch
	if len(subs) > 0 {
		matches = make([]ScanMatch, 0, len(subs))
		for i := range subs {
			matches = append(matches, ScanMatch{
				Addr:    subs[i].Addr,
				Payload: append([]byte(nil), subs[i].Payload...),
			})
		}
	}
	rpc.PutSubResponses(subs)
	lease.Release()
	return matches, nil
}

// RMW operation kinds.
const (
	RMWCas       uint8 = 1
	RMWFetchAdd  uint8 = 2
	RMWCondWrite uint8 = 3
)

// RMWOp is one operation in a multi-key read-modify-write batch.
type RMWOp struct {
	Kind   uint8      // RMWCas | RMWFetchAdd | RMWCondWrite
	Addr   *core.Addr // corrected in place like single ops
	Offset int        // CAS/FetchAdd byte offset

	Old, New []byte // RMWCas
	Delta    int64  // RMWFetchAdd

	Mode    uint8  // RMWCondWrite: rpc.CondIfVersion (default) | rpc.CondIfAbsent
	Version uint32 // RMWCondWrite expected version
	Value   []byte // RMWCondWrite payload
}

// RMWResult is the per-operation outcome of an RMW batch.
type RMWResult struct {
	Old     uint64 // FetchAdd pre-add value
	Version uint32 // CondWrite resulting version
	Err     error
}

// RMW executes a multi-key read-modify-write batch in one round trip. Each
// operation is atomic per key (executed under its block's lock); the batch
// as a whole is not a transaction — operations succeed or fail
// independently, each with its own result. Every sub-op carries a dedup
// token, so the frame is re-issued across reconnects, and sub-ops that
// raced a compaction are transparently retried with corrected pointers.
func (c *Ctx) RMW(ops []RMWOp) ([]RMWResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	for i := range ops {
		if ops[i].Kind < RMWCas || ops[i].Kind > RMWCondWrite {
			return nil, fmt.Errorf("client: RMW: unknown kind %d at op %d", ops[i].Kind, i)
		}
		if ops[i].Addr == nil {
			return nil, fmt.Errorf("client: RMW: nil addr at op %d", i)
		}
	}
	results := make([]RMWResult, len(ops))
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	for attempt := 0; ; attempt++ {
		if err := c.rmwOnce(ops, idx, results); err != nil {
			return nil, err
		}
		retry := idx[:0]
		for _, i := range idx {
			if errors.Is(results[i].Err, core.ErrCompacting) {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 || attempt >= c.Retries {
			return results, nil
		}
		clPushdownRetries.Inc()
		time.Sleep(c.RetryBackoff)
		idx = retry
	}
}

// rmwOnce issues one OpMultiRMW frame covering ops[idx...], decoding each
// sub-response into results[idx[k]].
func (c *Ctx) rmwOnce(ops []RMWOp, idx []int, results []RMWResult) error {
	scratch := getScratch(0)
	err := c.callBatchOp(rpc.OpMultiRMW, len(idx), true,
		func(k int) rpc.Request {
			op := &ops[idx[k]]
			scratch = scratch[:0]
			var wireOp rpc.OpCode
			switch op.Kind {
			case RMWCas:
				r := rpc.CASReq{Token: c.nextToken(), Offset: uint32(op.Offset), Old: op.Old, New: op.New}
				scratch = r.MarshalAppend(scratch)
				wireOp = rpc.OpCAS
			case RMWFetchAdd:
				r := rpc.FAddReq{Token: c.nextToken(), Offset: uint32(op.Offset), Delta: op.Delta}
				scratch = r.MarshalAppend(scratch)
				wireOp = rpc.OpFetchAdd
			default:
				mode := op.Mode
				if mode == 0 {
					mode = rpc.CondIfVersion
				}
				r := rpc.CondWriteReq{Token: c.nextToken(), Mode: mode, Version: op.Version, Value: op.Value}
				scratch = r.MarshalAppend(scratch)
				wireOp = rpc.OpCondWrite
			}
			return rpc.Request{Op: wireOp, Addr: *op.Addr, Payload: scratch}
		},
		func(k int, sub rpc.Response) {
			i := idx[k]
			op := &ops[i]
			c.adopt(op.Addr, sub.Addr)
			res := RMWResult{Err: sub.Status.Err()}
			switch {
			case op.Kind == RMWFetchAdd && res.Err == nil && len(sub.Payload) == 8:
				res.Old = binary.LittleEndian.Uint64(sub.Payload)
			case op.Kind == RMWCondWrite && len(sub.Payload) == 4:
				res.Version = binary.LittleEndian.Uint32(sub.Payload)
			}
			results[i] = res
		})
	putScratch(scratch)
	return err
}

// MultiFetchAdd applies the same delta to the counter at off in every
// object, one round trip for all keys — the bulk form of FetchAdd.
func (c *Ctx) MultiFetchAdd(addrs []*core.Addr, off int, delta int64) ([]RMWResult, error) {
	ops := make([]RMWOp, len(addrs))
	for i, a := range addrs {
		ops[i] = RMWOp{Kind: RMWFetchAdd, Addr: a, Offset: off, Delta: delta}
	}
	return c.RMW(ops)
}
