// Batched operations: the client half of the OpBatch pipeline. A Multi*
// call packs N sub-operations into one RPC frame, pays one round trip and
// one pending-map entry, and gets back N sub-responses — each with its own
// status and its own corrected pointer, so compaction stays exactly as
// visible (and as transparent) as with single operations.
//
// Retry rules are enforced per batch kind: MultiRead batches contain only
// idempotent sub-ops and are re-issued across transport reconnects like
// Read; MultiWrite, MultiAlloc, and MultiFree are never re-issued — a
// broken channel cannot tell whether the server executed the lost frame.
package client

import (
	"fmt"

	"corm/internal/core"
	"corm/internal/rpc"
)

// OpResult is the outcome of one sub-operation in a batched call.
type OpResult struct {
	// N is the payload length copied into the caller's buffer (reads).
	N int
	// Addr is the resulting pointer for MultiAlloc sub-ops. Reads, writes,
	// and frees fold pointer corrections into the caller's pointer instead.
	Addr core.Addr
	// Err is this sub-operation's own status; other sub-ops in the batch
	// succeed or fail independently.
	Err error
}

// marshalBatch packs n sub-requests built by fill into a pooled payload
// buffer. Hand the buffer back with putScratch after the call returns.
func marshalBatch(n int, fill func(i int) rpc.Request) []byte {
	body := rpc.AppendBatchHeader(getScratch(0)[:0], n)
	for i := 0; i < n; i++ {
		sub := fill(i)
		body = rpc.AppendSubRequest(body, &sub)
	}
	return body
}

// callBatch performs one OpBatch exchange and decodes the sub-responses
// into results via each. idempotent selects the reconnect-retry path.
func (c *Ctx) callBatch(n int, idempotent bool, fill func(i int) rpc.Request, each func(i int, sub rpc.Response)) error {
	return c.callBatchOp(rpc.OpBatch, n, idempotent, fill, each)
}

// callBatchOp is callBatch generalized over the frame opcode: OpMultiRMW
// uses the identical count-plus-sub-records framing with a restricted sub-op
// set, so the whole exchange path is shared.
func (c *Ctx) callBatchOp(op rpc.OpCode, n int, idempotent bool, fill func(i int) rpc.Request, each func(i int, sub rpc.Response)) error {
	if n == 0 {
		return nil
	}
	body := marshalBatch(n, fill)
	req := rpc.Request{Op: op, Payload: body}
	// The packed sub-responses are decoded directly out of the receive
	// lease — the only copies left in a batched read are the per-sub
	// copies into the caller's buffers.
	resp, lease, err := c.callLease(req, idempotent)
	putScratch(body)
	if err != nil {
		return err
	}
	if e := resp.Status.Err(); e != nil {
		lease.Release()
		return e
	}
	subs, derr := rpc.DecodeBatchResponses(resp.Payload, rpc.GetSubResponses())
	if derr == nil && len(subs) != n {
		derr = fmt.Errorf("%w: %d sub-responses for %d sub-requests", rpc.ErrBatchCorrupt, len(subs), n)
	}
	if derr != nil {
		rpc.PutSubResponses(subs)
		lease.Release()
		return derr
	}
	for i := range subs {
		each(i, subs[i])
	}
	rpc.PutSubResponses(subs)
	lease.Release()
	return nil
}

// MultiRead reads len(addrs) objects in one round trip; bufs[i] receives
// object i. Pointer corrections are folded into each addrs[i] exactly as
// Read does. The batch is idempotent, so it is transparently re-issued
// across transport reconnects. The returned error is batch-level
// (transport fault, corrupt frame, oversized batch); per-object outcomes
// are in the results.
func (c *Ctx) MultiRead(addrs []*core.Addr, bufs [][]byte) ([]OpResult, error) {
	if len(addrs) != len(bufs) {
		return nil, fmt.Errorf("client: MultiRead: %d addrs, %d bufs", len(addrs), len(bufs))
	}
	if len(addrs) == 0 {
		return nil, nil
	}
	results := make([]OpResult, len(addrs))
	err := c.callBatch(len(addrs), true,
		func(i int) rpc.Request {
			return rpc.Request{Op: rpc.OpRead, Addr: *addrs[i], Size: uint32(len(bufs[i]))}
		},
		func(i int, sub rpc.Response) {
			c.adopt(addrs[i], sub.Addr)
			if e := sub.Status.Err(); e != nil {
				results[i] = OpResult{Err: e}
				return
			}
			results[i] = OpResult{N: copy(bufs[i], sub.Payload)}
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MultiWrite updates len(addrs) objects in one round trip; payloads[i] is
// written to object i. Writes are never re-issued across reconnects: a
// transport fault surfaces as the batch-level error and the caller must
// decide, per application, whether re-writing is safe.
func (c *Ctx) MultiWrite(addrs []*core.Addr, payloads [][]byte) ([]OpResult, error) {
	if len(addrs) != len(payloads) {
		return nil, fmt.Errorf("client: MultiWrite: %d addrs, %d payloads", len(addrs), len(payloads))
	}
	if len(addrs) == 0 {
		return nil, nil
	}
	results := make([]OpResult, len(addrs))
	err := c.callBatch(len(addrs), false,
		func(i int) rpc.Request {
			return rpc.Request{Op: rpc.OpWrite, Addr: *addrs[i], Payload: payloads[i]}
		},
		func(i int, sub rpc.Response) {
			c.adopt(addrs[i], sub.Addr)
			results[i] = OpResult{Err: sub.Status.Err()}
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MultiAlloc allocates len(sizes) objects in one round trip; the resulting
// pointers are in the results' Addr fields. Not re-issued across
// reconnects (a lost frame may have allocated server-side).
func (c *Ctx) MultiAlloc(sizes []int) ([]OpResult, error) {
	if len(sizes) == 0 {
		return nil, nil
	}
	results := make([]OpResult, len(sizes))
	err := c.callBatch(len(sizes), false,
		func(i int) rpc.Request {
			return rpc.Request{Op: rpc.OpAlloc, Size: uint32(sizes[i])}
		},
		func(i int, sub rpc.Response) {
			results[i] = OpResult{Addr: sub.Addr, Err: sub.Status.Err()}
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MultiFree releases len(addrs) objects in one round trip, folding pointer
// corrections into each addrs[i] first. Not re-issued across reconnects.
func (c *Ctx) MultiFree(addrs []*core.Addr) ([]OpResult, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	results := make([]OpResult, len(addrs))
	err := c.callBatch(len(addrs), false,
		func(i int) rpc.Request {
			return rpc.Request{Op: rpc.OpFree, Addr: *addrs[i]}
		},
		func(i int, sub rpc.Response) {
			c.adopt(addrs[i], sub.Addr)
			results[i] = OpResult{Err: sub.Status.Err()}
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}
