package client

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

func TestCreateCtxUnreachable(t *testing.T) {
	if _, err := CreateCtx("127.0.0.1:1"); err == nil {
		t.Fatal("connect to dead port succeeded")
	}
}

func TestClassSizeInvalid(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, err := NewLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	bogus := core.MakeAddr(0x1000, 1, 1, 250)
	if _, err := ctx.ClassSize(bogus); !errors.Is(err, core.ErrInvalidAddr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ctx.DirectRead(&bogus, make([]byte, 8)); !errors.Is(err, core.ErrInvalidAddr) {
		t.Fatalf("direct read err = %v", err)
	}
}

func TestShortBuffersRejected(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, _ := NewLocal(srv)
	t.Cleanup(func() { ctx.Close() })
	addr, err := ctx.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.DirectRead(&addr, make([]byte, 10)); !errors.Is(err, core.ErrShortBuffer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ctx.ScanRead(&addr, make([]byte, 10)); !errors.Is(err, core.ErrShortBuffer) {
		t.Fatalf("scan err = %v", err)
	}
}

// TestCtxDirectReadRetriesUnderWriter exercises the client-side backoff
// loop against a genuinely concurrent writer over TCP.
func TestCtxDirectReadRetriesUnderWriter(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ts, err := transport.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	ctx, err := CreateCtx(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })

	size := 1024
	addr, err := ctx.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wctx, err := CreateCtx(ts.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer wctx.Close()
		a := addr
		for round := byte(1); ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := wctx.Write(&a, bytes.Repeat([]byte{round}, size)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, size)
	for i := 0; i < 300; i++ {
		if _, err := ctx.DirectRead(&addr, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		first := buf[0]
		for _, b := range buf {
			if b != first {
				t.Fatal("torn read escaped the retry loop")
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestChecksumModeOverTCP(t *testing.T) {
	store, err := core.NewStore(core.Config{
		Workers: 2, Strategy: core.StrategyCoRM, DataBacked: true,
		Consistency: core.ConsistencyChecksum,
		Remap:       core.RemapODPPrefetch,
		Model:       timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ts, err := transport.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	ctx, err := CreateCtx(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })

	// The client must have learned the checksum mode from OpInfo: direct
	// reads fetch the denser stride and validate via CRC.
	addr, err := ctx.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC5}, 512)
	if err := ctx.Write(&addr, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if _, err := ctx.DirectRead(&addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("checksum-mode TCP read mismatch")
	}
}

func TestSmartReadPlainMiss(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ctx, _ := NewLocal(srv)
	t.Cleanup(func() { ctx.Close() })
	addr, _ := ctx.Alloc(64)
	if err := ctx.Free(&addr); err != nil {
		t.Fatal(err)
	}
	// Freed object: DirectRead says wrong-object, ScanRead says not found.
	if _, err := ctx.SmartRead(&addr, make([]byte, 64)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
