package client

import (
	"sync"
	"time"
)

// TokenBucket is a classic rate limiter for client-side admission control:
// tokens accrue at Rate per second up to a Burst ceiling, and each admitted
// operation spends one. It is the client/cluster half of overload control —
// the server half is rpc.Server's queue-depth shedding — so a tenant's
// offered load is capped before it ever crosses the wire.
//
// The zero value and any bucket with rate <= 0 admit everything (an
// unlimited tenant). Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for deterministic tests
}

// NewTokenBucket builds a bucket admitting ratePerSec ops/s steady-state
// with bursts up to burst ops. burst < 1 is clamped to 1 so a positive rate
// can ever admit. ratePerSec <= 0 yields an unlimited bucket.
func NewTokenBucket(ratePerSec float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   ratePerSec,
		burst:  float64(burst),
		tokens: float64(burst), // start full: a fresh tenant gets its burst
		now:    time.Now,
	}
}

// withClock substitutes the time source; tests use it to step time
// deterministically.
func (b *TokenBucket) withClock(now func() time.Time) *TokenBucket {
	b.now = now
	b.last = time.Time{}
	return b
}

// Allow spends one token if available, reporting whether the operation is
// admitted.
func (b *TokenBucket) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true
	}
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// SetRate retargets the steady-state rate (and optionally burst, if
// burst > 0) without resetting the accrued tokens — the hook for diurnal
// admission curves that retune tenants on the fly.
func (b *TokenBucket) SetRate(ratePerSec float64, burst int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rate = ratePerSec
	if burst > 0 {
		b.burst = float64(burst)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
}
