// Asynchronous reads with transparent coalescing. ReadAsync returns a
// Future immediately; an internal batcher gathers every read issued within
// a small window (AsyncWindow) — or until AsyncMaxBatch reads are pending —
// and flushes them as one OpBatch frame. Callers that naturally issue
// bursts of independent reads (index probes, scatter-gather KV lookups) get
// doorbell-style batching without restructuring their code around Multi*
// calls; the futures resolve individually, each with its own status and
// corrected pointer.
package client

import (
	"sync"
	"time"

	"corm/internal/core"
)

// Future resolves to the outcome of one asynchronous read.
type Future struct {
	done chan struct{}
	n    int
	err  error
}

// Wait blocks until the read completes, returning the bytes copied into
// the caller's buffer and the read's status.
func (f *Future) Wait() (int, error) {
	<-f.done
	return f.n, f.err
}

// resolve delivers the outcome exactly once.
func (f *Future) resolve(n int, err error) {
	f.n = n
	f.err = err
	close(f.done)
}

// asyncRead is one pending future awaiting the next flush.
type asyncRead struct {
	addr *core.Addr
	buf  []byte
	fut  *Future
}

// batcher coalesces asynchronous reads into OpBatch flushes.
type batcher struct {
	mu      sync.Mutex
	pending []asyncRead
	timer   *time.Timer // armed while pending is non-empty
}

// take removes and returns the pending set, disarming the window timer.
func (b *batcher) take() []asyncRead {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.takeLocked()
}

func (b *batcher) takeLocked() []asyncRead {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// ReadAsync enqueues an RPC read and returns a future for its completion.
// The read is dispatched when either AsyncWindow elapses or AsyncMaxBatch
// reads are pending, whichever comes first — coalesced with every other
// read enqueued meanwhile into a single OpBatch round trip. Like Read, the
// batch is idempotent and re-issued across transport reconnects, and the
// pointer is corrected in place before the future resolves.
func (c *Ctx) ReadAsync(addr *core.Addr, buf []byte) *Future {
	f := &Future{done: make(chan struct{})}
	b := &c.batch
	b.mu.Lock()
	b.pending = append(b.pending, asyncRead{addr: addr, buf: buf, fut: f})
	switch {
	case len(b.pending) >= c.AsyncMaxBatch:
		batch := b.takeLocked()
		b.mu.Unlock()
		go c.flushBatch(batch)
	case len(b.pending) == 1:
		b.timer = time.AfterFunc(c.AsyncWindow, func() { c.flushBatch(c.batch.take()) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	return f
}

// Flush dispatches any pending asynchronous reads immediately, without
// waiting for the coalescing window. It does not wait for their futures.
func (c *Ctx) Flush() {
	if batch := c.batch.take(); len(batch) > 0 {
		go c.flushBatch(batch)
	}
}

// flushBatch issues one coalesced MultiRead and resolves every future.
func (c *Ctx) flushBatch(batch []asyncRead) {
	if len(batch) == 0 {
		return
	}
	clAsyncFlushSize.Observe(int64(len(batch)))
	addrs := make([]*core.Addr, len(batch))
	bufs := make([][]byte, len(batch))
	for i, r := range batch {
		addrs[i] = r.addr
		bufs[i] = r.buf
	}
	results, err := c.MultiRead(addrs, bufs)
	for i, r := range batch {
		if err != nil {
			r.fut.resolve(0, err)
			continue
		}
		r.fut.resolve(results[i].N, results[i].Err)
	}
}

// drainAsync resolves all pending futures with err without issuing I/O;
// Close uses it so no future ever hangs on a closed context.
func (c *Ctx) drainAsync(err error) {
	for _, r := range c.batch.take() {
		r.fut.resolve(0, err)
	}
}
