// Asynchronous reads and writes with transparent coalescing. ReadAsync and
// WriteAsync return a Future immediately; an internal batcher gathers every
// operation issued within a small window (AsyncWindow) — or until
// AsyncMaxBatch operations are pending — and flushes them as one OpBatch
// frame. Callers that naturally issue bursts of independent operations
// (index probes, scatter-gather KV lookups, replica write fan-out) get
// doorbell-style batching without restructuring their code around Multi*
// calls; the futures resolve individually, each with its own status and
// corrected pointer. Reads and writes batch separately: reads are
// idempotent (re-issued across reconnects), writes are not.
package client

import (
	"sync"
	"time"

	"corm/internal/core"
)

// Future resolves to the outcome of one asynchronous operation.
type Future struct {
	done chan struct{}
	n    int
	err  error
}

// Wait blocks until the operation completes, returning the bytes copied
// (for reads; 0 for writes) and the operation's status.
func (f *Future) Wait() (int, error) {
	<-f.done
	return f.n, f.err
}

// resolve delivers the outcome exactly once.
func (f *Future) resolve(n int, err error) {
	f.n = n
	f.err = err
	close(f.done)
}

// asyncOp is one pending future awaiting the next flush. buf is the
// caller's destination buffer for reads and the payload for writes.
type asyncOp struct {
	addr *core.Addr
	buf  []byte
	fut  *Future
}

// batcher coalesces asynchronous operations into OpBatch flushes.
type batcher struct {
	mu      sync.Mutex
	pending []asyncOp
	timer   *time.Timer // armed while pending is non-empty
}

// take removes and returns the pending set, disarming the window timer.
func (b *batcher) take() []asyncOp {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.takeLocked()
}

func (b *batcher) takeLocked() []asyncOp {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// ReadAsync enqueues an RPC read and returns a future for its completion.
// The read is dispatched when either AsyncWindow elapses or AsyncMaxBatch
// reads are pending, whichever comes first — coalesced with every other
// read enqueued meanwhile into a single OpBatch round trip. Like Read, the
// batch is idempotent and re-issued across transport reconnects, and the
// pointer is corrected in place before the future resolves.
func (c *Ctx) ReadAsync(addr *core.Addr, buf []byte) *Future {
	return c.enqueue(&c.batch, addr, buf, c.flushBatch)
}

// WriteAsync enqueues a write of payload and returns a future for its
// completion. Writes enqueued within the coalescing window dispatch as a
// single MultiWrite round trip — replica fan-outs from many concurrent
// Puts against the same node share frames. Like Write, the batch is NOT
// re-issued across transport reconnects (a lost frame cannot tell whether
// the server applied it), and the pointer is corrected in place before the
// future resolves.
func (c *Ctx) WriteAsync(addr *core.Addr, payload []byte) *Future {
	return c.enqueue(&c.wbatch, addr, payload, c.flushWriteBatch)
}

// enqueue appends one operation to a batcher and arms its dispatch: flush
// immediately at AsyncMaxBatch, otherwise when AsyncWindow elapses.
func (c *Ctx) enqueue(b *batcher, addr *core.Addr, buf []byte, flush func([]asyncOp)) *Future {
	f := &Future{done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, asyncOp{addr: addr, buf: buf, fut: f})
	switch {
	case len(b.pending) >= c.AsyncMaxBatch:
		batch := b.takeLocked()
		b.mu.Unlock()
		go flush(batch)
	case len(b.pending) == 1:
		b.timer = time.AfterFunc(c.AsyncWindow, func() { flush(b.take()) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	return f
}

// Flush dispatches any pending asynchronous reads and writes immediately,
// without waiting for the coalescing window. It does not wait for their
// futures.
func (c *Ctx) Flush() {
	if batch := c.batch.take(); len(batch) > 0 {
		go c.flushBatch(batch)
	}
	if batch := c.wbatch.take(); len(batch) > 0 {
		go c.flushWriteBatch(batch)
	}
	if batch := c.abatch.take(); len(batch) > 0 {
		go c.flushAtomicBatch(batch)
	}
}

// flushBatch issues one coalesced MultiRead and resolves every future.
func (c *Ctx) flushBatch(batch []asyncOp) {
	if len(batch) == 0 {
		return
	}
	clAsyncFlushSize.Observe(int64(len(batch)))
	addrs := make([]*core.Addr, len(batch))
	bufs := make([][]byte, len(batch))
	for i, r := range batch {
		addrs[i] = r.addr
		bufs[i] = r.buf
	}
	results, err := c.MultiRead(addrs, bufs)
	for i, r := range batch {
		if err != nil {
			r.fut.resolve(0, err)
			continue
		}
		r.fut.resolve(results[i].N, results[i].Err)
	}
}

// flushWriteBatch issues one coalesced MultiWrite and resolves every
// future.
func (c *Ctx) flushWriteBatch(batch []asyncOp) {
	if len(batch) == 0 {
		return
	}
	clAsyncFlushSize.Observe(int64(len(batch)))
	addrs := make([]*core.Addr, len(batch))
	payloads := make([][]byte, len(batch))
	for i, w := range batch {
		addrs[i] = w.addr
		payloads[i] = w.buf
	}
	results, err := c.MultiWrite(addrs, payloads)
	for i, w := range batch {
		if err != nil {
			w.fut.resolve(0, err)
			continue
		}
		w.fut.resolve(results[i].N, results[i].Err)
	}
}

// drainAsync resolves all pending futures with err without issuing I/O;
// Close uses it so no future ever hangs on a closed context.
func (c *Ctx) drainAsync(err error) {
	for _, r := range c.batch.take() {
		r.fut.resolve(0, err)
	}
	for _, w := range c.wbatch.take() {
		w.fut.resolve(0, err)
	}
	for _, a := range c.abatch.take() {
		a.fut.resolve(0, err)
	}
}

// AtomicFuture resolves to the outcome of one asynchronous pushdown atomic.
type AtomicFuture struct {
	done chan struct{}
	val  uint64
	err  error
}

// Wait blocks until the operation completes, returning the pre-add value
// (FetchAddAsync) and the operation's status.
func (f *AtomicFuture) Wait() (uint64, error) {
	<-f.done
	return f.val, f.err
}

func (f *AtomicFuture) resolve(val uint64, err error) {
	f.val = val
	f.err = err
	close(f.done)
}

// atomicOp is one pending pushdown atomic awaiting the next flush.
type atomicOp struct {
	addr  *core.Addr
	off   int
	delta int64
	fut   *AtomicFuture
}

// abatcher coalesces asynchronous pushdown atomics into OpMultiRMW flushes.
// Separate from the read/write batchers: atomics carry dedup tokens, so the
// frame is re-issued across reconnects like reads, but resolves RMWResults
// rather than byte counts.
type abatcher struct {
	mu      sync.Mutex
	pending []atomicOp
	timer   *time.Timer
}

func (b *abatcher) take() []atomicOp {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.takeLocked()
}

func (b *abatcher) takeLocked() []atomicOp {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// FetchAddAsync enqueues a pushdown fetch-add and returns a future for its
// pre-add value. Atomics enqueued within the coalescing window dispatch as
// one OpMultiRMW round trip — the doorbell batching that lets a counter
// workload push many increments per wire exchange while each stays
// individually atomic server-side.
func (c *Ctx) FetchAddAsync(addr *core.Addr, off int, delta int64) *AtomicFuture {
	f := &AtomicFuture{done: make(chan struct{})}
	b := &c.abatch
	b.mu.Lock()
	b.pending = append(b.pending, atomicOp{addr: addr, off: off, delta: delta, fut: f})
	switch {
	case len(b.pending) >= c.AsyncMaxBatch:
		batch := b.takeLocked()
		b.mu.Unlock()
		go c.flushAtomicBatch(batch)
	case len(b.pending) == 1:
		b.timer = time.AfterFunc(c.AsyncWindow, func() { c.flushAtomicBatch(b.take()) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	return f
}

// flushAtomicBatch issues one coalesced RMW and resolves every future.
func (c *Ctx) flushAtomicBatch(batch []atomicOp) {
	if len(batch) == 0 {
		return
	}
	clAsyncFlushSize.Observe(int64(len(batch)))
	ops := make([]RMWOp, len(batch))
	for i, a := range batch {
		ops[i] = RMWOp{Kind: RMWFetchAdd, Addr: a.addr, Offset: a.off, Delta: a.delta}
	}
	results, err := c.RMW(ops)
	for i, a := range batch {
		if err != nil {
			a.fut.resolve(0, err)
			continue
		}
		a.fut.resolve(results[i].Old, results[i].Err)
	}
}
