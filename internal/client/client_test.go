package client

import (
	"bytes"
	"errors"
	"testing"

	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

func newStore(t *testing.T) *core.Store {
	t.Helper()
	store, err := core.NewStore(core.Config{
		Workers:    4,
		Strategy:   core.StrategyCoRM,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// eachBackend runs the test body against a local and a TCP-backed context.
func eachBackend(t *testing.T, body func(t *testing.T, store *core.Store, ctx *Ctx)) {
	t.Run("local", func(t *testing.T) {
		store := newStore(t)
		srv := rpc.NewServer(store)
		t.Cleanup(srv.Close)
		ctx, err := NewLocal(srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ctx.Close() })
		body(t, store, ctx)
	})
	t.Run("tcp", func(t *testing.T) {
		store := newStore(t)
		srv := rpc.NewServer(store)
		t.Cleanup(srv.Close)
		ts, err := transport.Listen("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ts.Close)
		ctx, err := CreateCtx(ts.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ctx.Close() })
		body(t, store, ctx)
	})
}

func TestCtxLifecycle(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		addr, err := ctx.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{7}, 128)
		if err := ctx.Write(&addr, payload); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		if _, err := ctx.Read(&addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("RPC read mismatch")
		}
		clear(buf)
		if _, err := ctx.DirectRead(&addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatal("one-sided read mismatch")
		}
		if err := ctx.Free(&addr); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.Read(&addr, buf); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("read after free: %v", err)
		}
		if _, err := ctx.DirectRead(&addr, buf); !errors.Is(err, core.ErrWrongObject) {
			t.Fatalf("direct read after free: %v", err)
		}
	})
}

func TestCtxAllocTooLarge(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		if _, err := ctx.Alloc(1 << 26); !errors.Is(err, core.ErrNoClass) {
			t.Fatalf("err = %v", err)
		}
	})
}

// fragment allocates many objects and then frees all but `keep` per block
// (grouping by each pointer's actual block, since RPC workers spread
// allocations over threads), leaving sparse blocks for compaction.
func fragment(t *testing.T, store *core.Store, ctx *Ctx, size, total, keep int) []core.Addr {
	t.Helper()
	blockBytes := store.Config().BlockBytes
	var all []core.Addr
	for i := 0; i < total; i++ {
		a, err := ctx.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, a)
	}
	perBlock := make(map[uint64]int)
	var live []core.Addr
	for i := range all {
		base := all[i].VAddr() &^ uint64(blockBytes-1)
		if perBlock[base] < keep {
			perBlock[base]++
			payload := bytes.Repeat([]byte{byte(i)}, size)
			if err := ctx.Write(&all[i], payload); err != nil {
				t.Fatal(err)
			}
			live = append(live, all[i])
			continue
		}
		if err := ctx.Free(&all[i]); err != nil {
			t.Fatal(err)
		}
	}
	return live
}

func TestCtxSurvivesCompaction(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		per := store.Allocator().Config().SlotsPerBlock(64)
		live := fragment(t, store, ctx, 64, 6*per, 2)
		class := store.Allocator().Config().ClassFor(64)
		r := store.CompactClass(core.CompactOptions{Class: class, Leader: 0})
		if r.BlocksFreed == 0 {
			t.Fatal("nothing compacted")
		}
		// RPC reads: transparent correction.
		for i := range live {
			buf := make([]byte, 64)
			if _, err := ctx.Read(&live[i], buf); err != nil {
				t.Fatalf("RPC read: %v", err)
			}
		}
		// One-sided path: SmartRead falls back to ScanRead for indirect
		// pointers and fixes them.
		scans := 0
		for i := range live {
			buf := make([]byte, 64)
			a := live[i]
			if _, err := ctx.SmartRead(&a, buf); err != nil {
				t.Fatalf("SmartRead: %v", err)
			}
			if a.HasFlag(core.FlagIndirectObserved) {
				scans++
				// Corrected pointer now works directly.
				if _, err := ctx.DirectRead(&a, buf); err != nil {
					t.Fatalf("DirectRead after fix: %v", err)
				}
			}
		}
		t.Logf("corrected %d/%d pointers via ScanRead", scans, len(live))
	})
}

func TestCtxReleasePtr(t *testing.T) {
	eachBackend(t, func(t *testing.T, store *core.Store, ctx *Ctx) {
		per := store.Allocator().Config().SlotsPerBlock(64)
		live := fragment(t, store, ctx, 64, 4*per, 1)
		class := store.Allocator().Config().ClassFor(64)
		if r := store.CompactClass(core.CompactOptions{Class: class, Leader: 0}); r.BlocksFreed == 0 {
			t.Fatal("nothing compacted")
		}
		for i := range live {
			old := live[i].VAddr()
			if err := ctx.ReleasePtr(&live[i]); err != nil {
				t.Fatalf("release: %v", err)
			}
			buf := make([]byte, 64)
			if _, err := ctx.Read(&live[i], buf); err != nil {
				t.Fatalf("read after release: %v", err)
			}
			_ = old
		}
		if store.PendingVaddrs() != 0 {
			t.Fatalf("%d vaddrs still pending", store.PendingVaddrs())
		}
	})
}

func TestTCPDMABadKeyAndReconnect(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ts, err := transport.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)
	conn, err := transport.Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })

	ctx, err := CreateCtx(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctx.Close() })
	addr, err := ctx.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}

	// Invalid rkey breaks this QP; subsequent reads fail until reconnect.
	buf := make([]byte, 8)
	if err := conn.DirectRead(0xDEAD, addr.VAddr(), buf); !errors.Is(err, transport.ErrDMABadKey) {
		t.Fatalf("bad key: %v", err)
	}
	if err := conn.DirectRead(addr.RKey(), addr.VAddr(), buf); !errors.Is(err, transport.ErrDMABroken) {
		t.Fatalf("broken QP accepted read: %v", err)
	}
	if err := conn.ReconnectDMA(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, core.DataStride(64))
	if err := conn.DirectRead(addr.RKey(), addr.VAddr(), raw); err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
}

func TestCtxConcurrentClientsTCP(t *testing.T) {
	store := newStore(t)
	srv := rpc.NewServer(store)
	t.Cleanup(srv.Close)
	ts, err := transport.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ts.Close)

	done := make(chan error, 4)
	for c := 0; c < 4; c++ {
		c := c
		go func() {
			ctx, err := CreateCtx(ts.Addr())
			if err != nil {
				done <- err
				return
			}
			defer ctx.Close()
			var addrs []core.Addr
			for i := 0; i < 50; i++ {
				a, err := ctx.Alloc(64)
				if err != nil {
					done <- err
					return
				}
				payload := bytes.Repeat([]byte{byte(c)}, 64)
				if err := ctx.Write(&a, payload); err != nil {
					done <- err
					return
				}
				addrs = append(addrs, a)
			}
			buf := make([]byte, 64)
			for i := range addrs {
				if _, err := ctx.DirectRead(&addrs[i], buf); err != nil {
					done <- err
					return
				}
				if buf[0] != byte(c) {
					done <- errors.New("cross-client data corruption")
					return
				}
				if err := ctx.Free(&addrs[i]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
