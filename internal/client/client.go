// Package client implements CoRM's client library: the Table 2 API.
//
//	ctx, _  := client.CreateCtx("host:port")       // or client.NewLocal(...)
//	addr, _ := ctx.Alloc(64)
//	ctx.Write(&addr, data)
//	ctx.Read(&addr, buf)        // RPC read, pointer correction transparent
//	ctx.DirectRead(&addr, buf)  // one-sided RDMA read, no remote CPU
//	ctx.ScanRead(&addr, buf)    // one-sided block scan (pointer correction)
//	ctx.ReleasePtr(&addr)       // release the old virtual address
//	ctx.Free(&addr)
//
// Every call that may correct the pointer updates it in place and reports
// the correction through addr's FlagIndirectObserved, implementing "CoRM
// always notifies the user if it uses an old pointer" (§3.3).
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"corm/internal/core"
	"corm/internal/rnic"
	"corm/internal/rpc"
	"corm/internal/transport"
)

// Backend abstracts how the context reaches the store: in-process or TCP.
type Backend interface {
	Call(req rpc.Request) (rpc.Response, error)
	DirectRead(rkey uint32, vaddr uint64, buf []byte) error
	Close() error
}

// dmaReconnector is the optional Backend facet that repairs a broken QP by
// re-establishing the one-sided channel (transport.Conn implements it; the
// local backend reconnects its simulated QP).
type dmaReconnector interface {
	ReconnectDMA() error
}

// Ctx is a client context bound to one CoRM node.
type Ctx struct {
	backend    Backend
	classes    []int
	blockBytes int
	mode       core.ConsistencyMode

	// RetryBackoff paces DirectRead retries on inconsistent objects
	// (§3.2.3); Retries bounds them.
	RetryBackoff time.Duration
	Retries      int

	// ConnRetries bounds how many times an *idempotent* operation (Read,
	// DirectRead, ScanRead, Info) is transparently re-issued across
	// transport reconnects and QP repairs. Non-idempotent operations
	// (Alloc, Write, Free, ReleasePtr) are never re-issued: a broken
	// channel cannot tell whether the server executed the lost request.
	ConnRetries int

	// AsyncWindow and AsyncMaxBatch tune ReadAsync/WriteAsync coalescing:
	// pending asynchronous operations flush as one OpBatch when the window
	// elapses or the batch fills, whichever is first.
	AsyncWindow   time.Duration
	AsyncMaxBatch int

	batch  batcher  // pending asynchronous reads
	wbatch batcher  // pending asynchronous writes (flushed separately: not idempotent)
	abatch abatcher // pending asynchronous pushdown atomics (OpMultiRMW frames)

	// tokenBase/tokenSeq mint the per-operation dedup tokens of the
	// pushdown mutations (atomic.go): a random base per context plus a
	// sequence, so tokens are unique across contexts without coordination.
	tokenBase uint64
	tokenSeq  atomic.Uint64
}

// CreateCtx connects to a remote CoRM node over TCP (Table 2's
// CreateCtx(ip, port)).
func CreateCtx(addr string) (*Ctx, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return New(conn)
}

// CreateCtxOptions connects over TCP with explicit transport options
// (deadlines, redial backoff, fault-injecting dialer).
func CreateCtxOptions(addr string, opts transport.Options) (*Ctx, error) {
	conn, err := transport.DialOptions(addr, opts)
	if err != nil {
		return nil, err
	}
	return New(conn)
}

// NewLocal builds a context over an in-process RPC server. One-sided reads
// go through a simulated QP on the store's NIC.
func NewLocal(srv *rpc.Server) (*Ctx, error) {
	return New(&localBackend{srv: srv, qp: srv.Store().ConnectClient()})
}

// New builds a context over any backend, fetching the store parameters.
// On failure the backend is closed.
func New(b Backend) (*Ctx, error) {
	resp, err := b.Call(rpc.Request{Op: rpc.OpInfo})
	if err != nil {
		b.Close()
		return nil, err
	}
	if resp.Status != rpc.StatusOK {
		b.Close()
		return nil, fmt.Errorf("client: info failed: %v", resp.Status)
	}
	info, err := rpc.UnmarshalInfo(resp.Payload)
	if err != nil {
		b.Close()
		return nil, err
	}
	return &Ctx{
		backend:       b,
		classes:       info.Classes,
		blockBytes:    info.BlockBytes,
		mode:          info.Consistency,
		RetryBackoff:  2 * time.Microsecond,
		Retries:       64,
		ConnRetries:   3,
		AsyncWindow:   50 * time.Microsecond,
		AsyncMaxBatch: 64,
		tokenBase:     rand.Uint64(),
	}, nil
}

// Close releases the context. Pending asynchronous reads resolve with an
// error instead of hanging their futures.
func (c *Ctx) Close() error {
	c.drainAsync(errors.New("client: context closed"))
	return c.backend.Close()
}

// scratchPool recycles the client's one-sided read buffers (stride- and
// block-sized) and batch marshalling scratch; allocating them per call
// costs an allocation per operation on the hottest paths. The pool stores
// *[]byte boxes (with the empty boxes themselves recycled) because putting
// a bare slice into a sync.Pool re-boxes its header on every Put.
var (
	scratchPool    = sync.Pool{} // holds *[]byte with a live backing array
	scratchBoxPool = sync.Pool{} // holds *[]byte awaiting reuse
)

// getScratch returns a pooled buffer of length n.
func getScratch(n int) []byte {
	if p, _ := scratchPool.Get().(*[]byte); p != nil {
		b := *p
		*p = nil
		scratchBoxPool.Put(p)
		if cap(b) >= n {
			return b[:n]
		}
	}
	c := n
	if c < 4096 {
		c = 4096
	}
	return make([]byte, n, c)
}

// putScratch recycles a buffer obtained from getScratch.
func putScratch(b []byte) {
	p, _ := scratchBoxPool.Get().(*[]byte)
	if p == nil {
		p = new([]byte)
	}
	*p = b[:0]
	scratchPool.Put(p)
}

// connRetrySleep paces re-issues of an idempotent operation across
// transport faults: exponential from 1ms, so a flapping wire is not
// hammered by a tight re-issue loop (the transport's own redial backoff
// only covers dialing, not the re-submitted request).
func connRetrySleep(attempt int) {
	time.Sleep(time.Millisecond << attempt)
}

// callIdempotent re-issues an idempotent RPC across transport reconnects,
// up to ConnRetries extra attempts. The transport re-dials broken channels
// itself (with backoff); this loop only re-submits the lost request.
func (c *Ctx) callIdempotent(req rpc.Request) (rpc.Response, error) {
	var resp rpc.Response
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = c.backend.Call(req)
		if err == nil || attempt >= c.ConnRetries || !transport.IsRetryable(err) {
			return resp, err
		}
		clRetries.Inc()
		connRetrySleep(attempt)
	}
}

// leaseCaller / leaseDirectReader are the optional zero-copy facets a
// backend may provide (transport.Conn does): response payloads alias a
// receive-buffer lease instead of being copied onto the heap. Backends
// without the facets fall back to the copying paths transparently.
type leaseCaller interface {
	CallLease(req rpc.Request) (rpc.Response, *transport.Lease, error)
}

type leaseDirectReader interface {
	DirectReadLease(rkey uint32, vaddr uint64, n int) (*transport.Lease, []byte, error)
}

// callLease performs one RPC (re-issued across reconnects when idempotent)
// and returns the response plus the lease its payload aliases. The caller
// must Release the lease once done with the payload; on the fallback
// (non-lease backend) path the lease is nil-safe to release and the
// payload is heap-owned.
func (c *Ctx) callLease(req rpc.Request, idempotent bool) (rpc.Response, *transport.Lease, error) {
	lc, ok := c.backend.(leaseCaller)
	if !ok {
		var resp rpc.Response
		var err error
		if idempotent {
			resp, err = c.callIdempotent(req)
		} else {
			resp, err = c.backend.Call(req)
		}
		return resp, nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, lease, err := lc.CallLease(req)
		if err == nil || !idempotent || attempt >= c.ConnRetries || !transport.IsRetryable(err) {
			return resp, lease, err
		}
		clRetries.Inc()
		connRetrySleep(attempt)
	}
}

// leaseDirectRead issues one one-sided read returning a lease-backed view,
// repairing broken QPs like directRead. Backends without the lease facet
// read into a transient buffer, so callers see one code path.
func (c *Ctx) leaseDirectRead(rkey uint32, vaddr uint64, n int) (*transport.Lease, []byte, error) {
	ldr, hasLease := c.backend.(leaseDirectReader)
	for attempt := 0; ; attempt++ {
		var lease *transport.Lease
		var view []byte
		var err error
		if hasLease {
			lease, view, err = ldr.DirectReadLease(rkey, vaddr, n)
		} else {
			view = make([]byte, n)
			if err = c.backend.DirectRead(rkey, vaddr, view); err == nil {
				lease = transport.TransientLease(view)
			}
		}
		switch {
		case err == nil:
			return lease, view, nil
		case attempt >= c.ConnRetries:
			return nil, nil, err
		case isQPBroken(err):
			r, ok := c.backend.(dmaReconnector)
			if !ok {
				return nil, nil, err
			}
			if rerr := r.ReconnectDMA(); rerr != nil && !transport.IsRetryable(rerr) {
				return nil, nil, rerr
			}
			clQPReconnects.Inc()
		case !transport.IsRetryable(err):
			return nil, nil, err
		default:
			connRetrySleep(attempt)
		}
		clDMARetries.Inc()
	}
}

// isQPBroken matches a broken queue pair from either backend flavour.
func isQPBroken(err error) bool {
	return errors.Is(err, transport.ErrDMABroken) || errors.Is(err, rnic.ErrQPBroken)
}

// Info re-fetches the store parameters; it doubles as a health probe.
func (c *Ctx) Info() (rpc.Info, error) {
	resp, err := c.callIdempotent(rpc.Request{Op: rpc.OpInfo})
	if err != nil {
		return rpc.Info{}, err
	}
	if resp.Status != rpc.StatusOK {
		return rpc.Info{}, fmt.Errorf("client: info failed: %v", resp.Status)
	}
	return rpc.UnmarshalInfo(resp.Payload)
}

// ClassSize returns the payload capacity of a pointer's size class.
func (c *Ctx) ClassSize(addr core.Addr) (int, error) {
	cls := int(addr.Class())
	if cls < 0 || cls >= len(c.classes) {
		return 0, core.ErrInvalidAddr
	}
	return c.classes[cls], nil
}

// Alloc allocates an object of the given size. Like every non-read RPC it
// rides the lease path: the response is parsed in the transport's receive
// buffer and only the 16-byte pointer crosses onto the heap.
func (c *Ctx) Alloc(size int) (core.Addr, error) {
	resp, lease, err := c.callLease(rpc.Request{Op: rpc.OpAlloc, Size: uint32(size)}, false)
	if err != nil {
		return core.Addr{}, err
	}
	e := resp.Status.Err()
	addr := resp.Addr
	lease.Release()
	if e != nil {
		return core.Addr{}, e
	}
	return addr, nil
}

// Free releases the object; the pointer is corrected in place first if it
// was indirect.
func (c *Ctx) Free(addr *core.Addr) error {
	resp, lease, err := c.callLease(rpc.Request{Op: rpc.OpFree, Addr: *addr}, false)
	if err != nil {
		return err
	}
	c.adopt(addr, resp.Addr)
	e := resp.Status.Err()
	lease.Release()
	return e
}

// Read reads the object via RPC; pointer correction is transparent. Reads
// are idempotent, so they are re-issued across transport reconnects. The
// response payload stays in the transport's receive lease until the single
// copy into buf — no intermediate heap copy exists on this path.
func (c *Ctx) Read(addr *core.Addr, buf []byte) (int, error) {
	resp, lease, err := c.callLease(rpc.Request{Op: rpc.OpRead, Addr: *addr, Size: uint32(len(buf))}, true)
	if err != nil {
		return 0, err
	}
	if e := resp.Status.Err(); e != nil {
		lease.Release()
		return 0, e
	}
	c.adopt(addr, resp.Addr)
	n := copy(buf, resp.Payload)
	lease.Release()
	return n, nil
}

// Write updates the object via RPC. The empty response is parsed in the
// receive lease — no heap copy on the acknowledge path.
func (c *Ctx) Write(addr *core.Addr, payload []byte) error {
	resp, lease, err := c.callLease(rpc.Request{Op: rpc.OpWrite, Addr: *addr, Payload: payload}, false)
	if err != nil {
		return err
	}
	c.adopt(addr, resp.Addr)
	e := resp.Status.Err()
	lease.Release()
	return e
}

// ReleasePtr tells the node that all copies of this pointer have been
// corrected; the pointer is rebased onto the object's current block
// (§3.3).
func (c *Ctx) ReleasePtr(addr *core.Addr) error {
	resp, lease, err := c.callLease(rpc.Request{Op: rpc.OpRelease, Addr: *addr}, false)
	if err != nil {
		return err
	}
	e := resp.Status.Err()
	na := resp.Addr
	lease.Release()
	if e != nil {
		return e
	}
	*addr = na
	return nil
}

// DirectRead performs a one-sided read with client-side validity checks,
// retrying inconsistent reads with backoff. ErrWrongObject surfaces to the
// caller, who picks the correction path (ScanRead or RPC Read). The raw
// slot is validated directly in the transport's registered receive buffer
// — the one-sided scratch copy is gone.
func (c *Ctx) DirectRead(addr *core.Addr, buf []byte) (int, error) {
	size, err := c.ClassSize(*addr)
	if err != nil {
		return 0, err
	}
	if len(buf) < size {
		return 0, core.ErrShortBuffer
	}
	stride := core.StrideOf(c.mode, size)
	for attempt := 0; ; attempt++ {
		lease, raw, err := c.leaseDirectRead(addr.RKey(), addr.VAddr(), stride)
		if err != nil {
			return 0, err
		}
		payload, err := core.ExtractObjectMode(c.mode, raw, addr.ID(), size)
		switch {
		case err == nil:
			n := copy(buf, payload)
			lease.Release()
			return n, nil
		case errors.Is(err, core.ErrInconsistent) && attempt < c.Retries:
			lease.Release()
			clInconsistentRetries.Inc()
			time.Sleep(c.RetryBackoff)
		default:
			lease.Release()
			return 0, err
		}
	}
}

// ScanRead reads the object's whole block one-sidedly and scans it for the
// ID, fixing the pointer's offset hint on success (§3.2.2). The block is
// scanned in the transport's receive lease, not a staging copy.
func (c *Ctx) ScanRead(addr *core.Addr, buf []byte) (int, error) {
	size, err := c.ClassSize(*addr)
	if err != nil {
		return 0, err
	}
	if len(buf) < size {
		return 0, core.ErrShortBuffer
	}
	base := addr.VAddr() &^ uint64(c.blockBytes-1)
	for attempt := 0; ; attempt++ {
		lease, raw, err := c.leaseDirectRead(addr.RKey(), base, c.blockBytes)
		if err != nil {
			return 0, err
		}
		idx, payload, err := core.ScanBlockMode(c.mode, raw, addr.ID(), size)
		switch {
		case err == nil:
			addr.SetVAddr(base + uint64(idx*core.StrideOf(c.mode, size)))
			addr.SetFlag(core.FlagIndirectObserved)
			n := copy(buf, payload)
			lease.Release()
			return n, nil
		case errors.Is(err, core.ErrInconsistent) && attempt < c.Retries:
			lease.Release()
			clInconsistentRetries.Inc()
			time.Sleep(c.RetryBackoff)
		default:
			lease.Release()
			return 0, err
		}
	}
}

// SmartRead is the composite read loop a CoRM application uses: DirectRead
// first, ScanRead when the pointer turns out to be indirect.
func (c *Ctx) SmartRead(addr *core.Addr, buf []byte) (int, error) {
	n, err := c.DirectRead(addr, buf)
	if errors.Is(err, core.ErrWrongObject) {
		// Counted here — once per fallback decision — not inside ScanRead,
		// whose internal retry loop would otherwise inflate the count.
		clScanFallbacks.Inc()
		return c.ScanRead(addr, buf)
	}
	return n, err
}

// adopt folds a server-corrected pointer back into the caller's copy.
func (c *Ctx) adopt(addr *core.Addr, corrected core.Addr) {
	if !corrected.IsZero() && corrected.VAddr() != addr.VAddr() {
		*addr = corrected
	} else if corrected.HasFlag(core.FlagIndirectObserved) {
		addr.SetFlag(core.FlagIndirectObserved)
	}
}

// localBackend adapts an in-process rpc.Server and a simulated QP.
type localBackend struct {
	srv *rpc.Server
	qp  *core.ClientQP
}

func (l *localBackend) Call(req rpc.Request) (rpc.Response, error) {
	return l.srv.Submit(req), nil
}

func (l *localBackend) DirectRead(rkey uint32, vaddr uint64, buf []byte) error {
	_, err := l.qp.QP().Read(rkey, vaddr, buf)
	return err
}

// ReconnectDMA repairs the simulated QP after an error-state transition.
func (l *localBackend) ReconnectDMA() error {
	l.qp.QP().Reconnect()
	return nil
}

func (l *localBackend) Close() error {
	l.qp.Close()
	return nil
}
