// Package mem simulates the physical-memory substrate CoRM builds on.
//
// The real system allocates physical pages with memfd_create (anonymous
// 16 MiB in-RAM files), identifies a physical block by (file descriptor,
// page offset), and maps/remaps virtual pages onto those physical pages
// with mmap. This package reproduces that model in software:
//
//   - Frame: one 4 KiB physical page, identified by (FD, offset), with a
//     reference count. Two virtual blocks aliasing the same frames — the
//     essence of CoRM/Mesh compaction — is simply two page-table entries
//     holding the same *Frame.
//   - Phys: the frame allocator (the memfd_create model). It tracks live
//     frames, which is exactly the "active memory" metric of Figs 17-19.
//   - AddrSpace: a per-process virtual address space with a page table,
//     bump allocation of block-aligned virtual ranges, remapping, and a
//     per-page generation counter that lets the simulated RNIC detect
//     stale translations (ODP).
//
// Frames optionally carry real bytes (Backed). The accounting-only mode
// runs the 8-GiB-scale allocation traces of the paper without touching
// that much host memory.
package mem

import (
	"fmt"
	"sync"
)

const (
	// PageSize is the size of one physical page, as in the paper.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// FileSize is the size of one simulated memfd file (§3.1.1).
	FileSize = 16 << 20
	// PagesPerFile is how many frames one memfd file provides.
	PagesPerFile = FileSize / PageSize
)

// FrameID uniquely identifies a physical page as (file descriptor, byte
// offset inside the file), mirroring the paper's physical block naming.
type FrameID struct {
	FD  int
	Off int64
}

func (id FrameID) String() string { return fmt.Sprintf("fd%d+%#x", id.FD, id.Off) }

// Frame is one simulated physical page.
type Frame struct {
	ID    FrameID
	refs  int
	freed bool   // on the free list; guards double-release / use-after-free
	data  []byte // nil when the allocator is not byte-backed
	phys  *Phys

	// dataMu serializes byte access at page granularity. This mirrors DMA
	// atomicity: single-cacheline (and in our model, single-page) accesses
	// are atomic, while multi-page or multi-access sequences can observe
	// torn state — exactly the hazard CoRM's cacheline versioning detects.
	dataMu sync.Mutex
}

// Data returns the page's bytes, or nil in accounting-only mode. Callers
// that may race with writers must use ReadBytes/WriteBytes instead.
func (f *Frame) Data() []byte { return f.data }

// ReadBytes copies from the page at off under the page lock.
func (f *Frame) ReadBytes(off int, buf []byte) {
	f.dataMu.Lock()
	copy(buf, f.data[off:off+len(buf)])
	f.dataMu.Unlock()
}

// WriteBytes copies into the page at off under the page lock.
func (f *Frame) WriteBytes(off int, buf []byte) {
	f.dataMu.Lock()
	copy(f.data[off:off+len(buf)], buf)
	f.dataMu.Unlock()
}

// Refs returns the current mapping count (for tests and invariant checks).
func (f *Frame) Refs() int {
	f.phys.mu.Lock()
	defer f.phys.mu.Unlock()
	return f.refs
}

// Phys allocates and recycles physical frames.
type Phys struct {
	mu      sync.Mutex
	backed  bool
	nextFD  int
	nextOff int64
	free    []*Frame
	live    int
	peak    int
	files   int

	// budget caps live frames (0 = unlimited). When an Alloc would exceed
	// it, reclaim is invoked (without p.mu held) to evict cold mappings;
	// the budget is soft — if reclaim cannot free enough, the allocation
	// proceeds anyway and overruns counts the breach.
	budget   int
	reclaim  func(needPages int) int
	overruns int64
	reclaims int64
}

// NewPhys creates a frame allocator. If backed is true every frame carries
// a real 4 KiB buffer; otherwise frames are metadata-only.
func NewPhys(backed bool) *Phys {
	return &Phys{backed: backed, nextFD: 1}
}

// Backed reports whether frames carry real bytes.
func (p *Phys) Backed() bool { return p.backed }

// maxReclaimAttempts bounds how many eviction rounds one Alloc triggers
// before it gives up and breaches the (soft) budget.
const maxReclaimAttempts = 3

// SetBudget caps live frames at pages (0 = unlimited).
func (p *Phys) SetBudget(pages int) {
	p.mu.Lock()
	p.budget = pages
	p.mu.Unlock()
}

// Budget returns the live-frame cap (0 = unlimited).
func (p *Phys) Budget() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budget
}

// SetReclaimer installs the eviction hook Alloc invokes, with p.mu
// released, when an allocation would exceed the budget. The hook returns
// how many pages it managed to free.
func (p *Phys) SetReclaimer(f func(needPages int) int) {
	p.mu.Lock()
	p.reclaim = f
	p.mu.Unlock()
}

// BudgetOverruns counts allocations that proceeded past the budget after
// reclaim could not free enough frames.
func (p *Phys) BudgetOverruns() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.overruns
}

// Reclaims counts reclaim-hook invocations driven by budget pressure.
func (p *Phys) Reclaims() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reclaims
}

// Alloc returns n frames. Frames are handed out with a reference count of
// zero; mapping them into an AddrSpace takes references. Under a frame
// budget, allocations that would exceed it first ask the reclaimer to
// evict cold mappings; the budget is soft, so after bounded reclaim
// attempts the allocation succeeds regardless.
func (p *Phys) Alloc(n int) []*Frame {
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		over := p.budget > 0 && p.live+n > p.budget
		if !over || p.reclaim == nil || attempt >= maxReclaimAttempts {
			if over {
				p.overruns++
			}
			out := p.allocLocked(n)
			p.mu.Unlock()
			return out
		}
		need := p.live + n - p.budget
		reclaim := p.reclaim
		p.reclaims++
		p.mu.Unlock()
		// Invoked without p.mu: the reclaimer evicts mappings, which calls
		// back into decRef/release on this allocator.
		reclaim(need)
	}
}

func (p *Phys) allocLocked(n int) []*Frame {
	out := make([]*Frame, 0, n)
	for len(p.free) > 0 && len(out) < n {
		f := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		f.freed = false
		if p.backed {
			for i := range f.data {
				f.data[i] = 0
			}
		}
		out = append(out, f)
	}
	for len(out) < n {
		// Open a new 16 MiB memfd file when the current one is exhausted
		// (or on first use).
		if p.files == 0 || p.nextOff >= FileSize {
			p.files++
			p.nextFD = p.files
			p.nextOff = 0
		}
		f := &Frame{ID: FrameID{FD: p.nextFD, Off: p.nextOff}, phys: p}
		if p.backed {
			f.data = make([]byte, PageSize)
		}
		p.nextOff += PageSize
		out = append(out, f)
	}
	p.live += n
	if p.live > p.peak {
		p.peak = p.live
	}
	return out
}

// release returns a frame to the free list once its refcount drops to zero.
// Callers hold p.mu. Releasing a frame that is already free would double-
// count it on the free list and silently corrupt the live-frame accounting
// (the paper's "active memory" metric), so it panics with the frame's
// identity instead.
func (p *Phys) release(f *Frame) {
	if f.freed {
		panic("mem: double release of frame " + f.ID.String())
	}
	f.freed = true
	p.free = append(p.free, f)
	p.live--
}

// incRef takes a mapping reference on f.
func (p *Phys) incRef(f *Frame) {
	p.mu.Lock()
	if f.freed {
		p.mu.Unlock()
		panic("mem: reference to freed frame " + f.ID.String())
	}
	f.refs++
	p.mu.Unlock()
}

// decRef drops a mapping reference; at zero the frame is recycled.
func (p *Phys) decRef(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f.refs--
	if f.refs < 0 {
		panic("mem: frame refcount underflow " + f.ID.String())
	}
	if f.refs == 0 {
		p.release(f)
	}
}

// DropUnmapped recycles frames that were allocated but never mapped.
func (p *Phys) DropUnmapped(frames []*Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range frames {
		if f.refs == 0 {
			p.release(f)
		}
	}
}

// LivePages reports frames currently in use (mapped or allocated-unmapped).
func (p *Phys) LivePages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// LiveBytes is LivePages in bytes — the paper's "active memory".
func (p *Phys) LiveBytes() int64 { return int64(p.LivePages()) * PageSize }

// PeakPages reports the high-water mark of live frames.
func (p *Phys) PeakPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Files reports how many simulated memfd files were created.
func (p *Phys) Files() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.files
}
