// Package mem simulates the physical-memory substrate CoRM builds on.
//
// The real system allocates physical pages with memfd_create (anonymous
// 16 MiB in-RAM files), identifies a physical block by (file descriptor,
// page offset), and maps/remaps virtual pages onto those physical pages
// with mmap. This package reproduces that model in software:
//
//   - Frame: one 4 KiB physical page, identified by (FD, offset), with a
//     reference count. Two virtual blocks aliasing the same frames — the
//     essence of CoRM/Mesh compaction — is simply two page-table entries
//     holding the same *Frame.
//   - Phys: the frame allocator (the memfd_create model). It tracks live
//     frames, which is exactly the "active memory" metric of Figs 17-19.
//   - AddrSpace: a per-process virtual address space with a page table,
//     bump allocation of block-aligned virtual ranges, remapping, and a
//     per-page generation counter that lets the simulated RNIC detect
//     stale translations (ODP).
//
// Frames optionally carry real bytes (Backed). The accounting-only mode
// runs the 8-GiB-scale allocation traces of the paper without touching
// that much host memory.
package mem

import (
	"fmt"
	"sync"
)

const (
	// PageSize is the size of one physical page, as in the paper.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// FileSize is the size of one simulated memfd file (§3.1.1).
	FileSize = 16 << 20
	// PagesPerFile is how many frames one memfd file provides.
	PagesPerFile = FileSize / PageSize
)

// FrameID uniquely identifies a physical page as (file descriptor, byte
// offset inside the file), mirroring the paper's physical block naming.
type FrameID struct {
	FD  int
	Off int64
}

func (id FrameID) String() string { return fmt.Sprintf("fd%d+%#x", id.FD, id.Off) }

// Frame is one simulated physical page.
type Frame struct {
	ID   FrameID
	refs int
	data []byte // nil when the allocator is not byte-backed
	phys *Phys

	// dataMu serializes byte access at page granularity. This mirrors DMA
	// atomicity: single-cacheline (and in our model, single-page) accesses
	// are atomic, while multi-page or multi-access sequences can observe
	// torn state — exactly the hazard CoRM's cacheline versioning detects.
	dataMu sync.Mutex
}

// Data returns the page's bytes, or nil in accounting-only mode. Callers
// that may race with writers must use ReadBytes/WriteBytes instead.
func (f *Frame) Data() []byte { return f.data }

// ReadBytes copies from the page at off under the page lock.
func (f *Frame) ReadBytes(off int, buf []byte) {
	f.dataMu.Lock()
	copy(buf, f.data[off:off+len(buf)])
	f.dataMu.Unlock()
}

// WriteBytes copies into the page at off under the page lock.
func (f *Frame) WriteBytes(off int, buf []byte) {
	f.dataMu.Lock()
	copy(f.data[off:off+len(buf)], buf)
	f.dataMu.Unlock()
}

// Refs returns the current mapping count (for tests and invariant checks).
func (f *Frame) Refs() int {
	f.phys.mu.Lock()
	defer f.phys.mu.Unlock()
	return f.refs
}

// Phys allocates and recycles physical frames.
type Phys struct {
	mu      sync.Mutex
	backed  bool
	nextFD  int
	nextOff int64
	free    []*Frame
	live    int
	peak    int
	files   int
}

// NewPhys creates a frame allocator. If backed is true every frame carries
// a real 4 KiB buffer; otherwise frames are metadata-only.
func NewPhys(backed bool) *Phys {
	return &Phys{backed: backed, nextFD: 1}
}

// Backed reports whether frames carry real bytes.
func (p *Phys) Backed() bool { return p.backed }

// Alloc returns n frames. Frames are handed out with a reference count of
// zero; mapping them into an AddrSpace takes references.
func (p *Phys) Alloc(n int) []*Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Frame, 0, n)
	for len(p.free) > 0 && len(out) < n {
		f := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if p.backed {
			for i := range f.data {
				f.data[i] = 0
			}
		}
		out = append(out, f)
	}
	for len(out) < n {
		// Open a new 16 MiB memfd file when the current one is exhausted
		// (or on first use).
		if p.files == 0 || p.nextOff >= FileSize {
			p.files++
			p.nextFD = p.files
			p.nextOff = 0
		}
		f := &Frame{ID: FrameID{FD: p.nextFD, Off: p.nextOff}, phys: p}
		if p.backed {
			f.data = make([]byte, PageSize)
		}
		p.nextOff += PageSize
		out = append(out, f)
	}
	p.live += n
	if p.live > p.peak {
		p.peak = p.live
	}
	return out
}

// release returns a frame to the free list once its refcount drops to zero.
// Callers hold p.mu.
func (p *Phys) release(f *Frame) {
	p.free = append(p.free, f)
	p.live--
}

// incRef takes a mapping reference on f.
func (p *Phys) incRef(f *Frame) {
	p.mu.Lock()
	f.refs++
	p.mu.Unlock()
}

// decRef drops a mapping reference; at zero the frame is recycled.
func (p *Phys) decRef(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f.refs--
	if f.refs < 0 {
		panic("mem: frame refcount underflow " + f.ID.String())
	}
	if f.refs == 0 {
		p.release(f)
	}
}

// DropUnmapped recycles frames that were allocated but never mapped.
func (p *Phys) DropUnmapped(frames []*Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range frames {
		if f.refs == 0 {
			p.release(f)
		}
	}
}

// LivePages reports frames currently in use (mapped or allocated-unmapped).
func (p *Phys) LivePages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// LiveBytes is LivePages in bytes — the paper's "active memory".
func (p *Phys) LiveBytes() int64 { return int64(p.LivePages()) * PageSize }

// PeakPages reports the high-water mark of live frames.
func (p *Phys) PeakPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Files reports how many simulated memfd files were created.
func (p *Phys) Files() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.files
}
