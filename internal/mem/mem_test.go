package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPhysAllocUniqueIDs(t *testing.T) {
	p := NewPhys(false)
	seen := make(map[FrameID]bool)
	for _, f := range p.Alloc(3 * PagesPerFile) {
		if seen[f.ID] {
			t.Fatalf("duplicate frame id %v", f.ID)
		}
		seen[f.ID] = true
	}
	if p.Files() != 3 {
		t.Fatalf("files = %d, want 3 (16 MiB each)", p.Files())
	}
	if p.LivePages() != 3*PagesPerFile {
		t.Fatalf("live = %d", p.LivePages())
	}
}

func TestPhysRecycle(t *testing.T) {
	p := NewPhys(true)
	s := NewAddrSpace(p)
	frames := p.Alloc(4)
	v := s.ReserveBlock(4)
	s.Map(v, frames)
	frames[0].data[0] = 0xAB
	s.Unmap(v, 4)
	if p.LivePages() != 0 {
		t.Fatalf("live after unmap = %d, want 0", p.LivePages())
	}
	again := p.Alloc(4)
	if len(again) != 4 {
		t.Fatal("recycle failed")
	}
	for _, f := range again {
		for _, b := range f.data {
			if b != 0 {
				t.Fatal("recycled frame not zeroed")
			}
		}
	}
	if p.PeakPages() != 4 {
		t.Fatalf("peak = %d, want 4", p.PeakPages())
	}
}

func TestReserveBlockAlignment(t *testing.T) {
	s := NewAddrSpace(NewPhys(false))
	for _, pages := range []int{1, 2, 4, 8, 16, 64, 256} {
		v := s.ReserveBlock(pages)
		if v%(uint64(pages)*PageSize) != 0 {
			t.Fatalf("block of %d pages at %#x not size-aligned", pages, v)
		}
	}
}

func TestReserveBlockDistinct(t *testing.T) {
	s := NewAddrSpace(NewPhys(false))
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		v := s.ReserveBlock(4)
		if seen[v] {
			t.Fatalf("reused live address %#x", v)
		}
		seen[v] = true
	}
}

func TestRetireAndReuse(t *testing.T) {
	s := NewAddrSpace(NewPhys(false))
	v1 := s.ReserveBlock(2)
	s.RetireBlock(v1, 2)
	if s.ReusablePool(2) != 1 {
		t.Fatal("retired address not pooled")
	}
	v2 := s.ReserveBlock(2)
	if v2 != v1 {
		t.Fatalf("expected reuse of %#x, got %#x", v1, v2)
	}
	// Different size class pulls a fresh address.
	v3 := s.ReserveBlock(4)
	if v3 == v1 {
		t.Fatal("reused address across different block sizes")
	}
}

func TestRemapAliasesFrames(t *testing.T) {
	p := NewPhys(true)
	s := NewAddrSpace(p)

	src := p.Alloc(1)
	dst := p.Alloc(1)
	vSrc, vDst := s.ReserveBlock(1), s.ReserveBlock(1)
	s.Map(vSrc, src)
	s.Map(vDst, dst)
	dst[0].data[7] = 42

	// The compaction step: point the source vaddr at the destination frame.
	s.Remap(vSrc, dst)

	if p.LivePages() != 1 {
		t.Fatalf("source frame not released: live = %d", p.LivePages())
	}
	var b [1]byte
	if err := s.ReadAt(vSrc+7, b[:]); err != nil || b[0] != 42 {
		t.Fatalf("aliased read = %v/%v, want 42", b[0], err)
	}
	if err := s.ReadAt(vDst+7, b[:]); err != nil || b[0] != 42 {
		t.Fatalf("original read = %v/%v, want 42", b[0], err)
	}
	// Writing through one alias is visible through the other.
	if err := s.WriteAt(vDst+7, []byte{99}); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(vSrc+7, b[:]); err != nil || b[0] != 99 {
		t.Fatalf("alias write not visible: %v", b[0])
	}
	// Frame is shared by two mappings.
	if dst[0].Refs() != 2 {
		t.Fatalf("refs = %d, want 2", dst[0].Refs())
	}
	s.Unmap(vSrc, 1)
	if dst[0].Refs() != 1 || p.LivePages() != 1 {
		t.Fatal("unmap of alias must keep the frame alive")
	}
	s.Unmap(vDst, 1)
	if p.LivePages() != 0 {
		t.Fatal("frame leaked after final unmap")
	}
}

func TestRemapBumpsGeneration(t *testing.T) {
	p := NewPhys(false)
	s := NewAddrSpace(p)
	v := s.ReserveBlock(1)
	s.Map(v, p.Alloc(1))
	_, g0, ok := s.TranslateEntry(v)
	if !ok || g0 != 0 {
		t.Fatalf("initial generation = %d", g0)
	}
	s.Remap(v, p.Alloc(1))
	_, g1, _ := s.TranslateEntry(v)
	if g1 != g0+1 {
		t.Fatalf("generation after remap = %d, want %d", g1, g0+1)
	}
}

func TestTranslateUnmapped(t *testing.T) {
	s := NewAddrSpace(NewPhys(false))
	if _, _, ok := s.Translate(arenaBase + 0x5000); ok {
		t.Fatal("translate of unmapped address succeeded")
	}
	if err := NewAddrSpace(NewPhys(true)).ReadAt(arenaBase, make([]byte, 8)); err == nil {
		t.Fatal("read of unmapped address should fail")
	}
}

func TestAccountingModeRejectsData(t *testing.T) {
	p := NewPhys(false)
	s := NewAddrSpace(p)
	v := s.ReserveBlock(1)
	s.Map(v, p.Alloc(1))
	if err := s.ReadAt(v, make([]byte, 1)); err == nil {
		t.Fatal("accounting-only space must reject data access")
	}
}

func TestCrossPageReadWrite(t *testing.T) {
	p := NewPhys(true)
	s := NewAddrSpace(p)
	v := s.ReserveBlock(2)
	s.Map(v, p.Alloc(2))

	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	at := v + PageSize - 150 // straddles the page boundary
	if err := s.WriteAt(at, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 300)
	if err := s.ReadAt(at, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-page roundtrip mismatch")
	}
}

func TestDoubleMapPanics(t *testing.T) {
	p := NewPhys(false)
	s := NewAddrSpace(p)
	v := s.ReserveBlock(1)
	s.Map(v, p.Alloc(1))
	defer func() {
		if recover() == nil {
			t.Fatal("double map did not panic")
		}
	}()
	s.Map(v, p.Alloc(1))
}

func TestRetireMappedPanics(t *testing.T) {
	p := NewPhys(false)
	s := NewAddrSpace(p)
	v := s.ReserveBlock(1)
	s.Map(v, p.Alloc(1))
	defer func() {
		if recover() == nil {
			t.Fatal("retiring a mapped block did not panic")
		}
	}()
	s.RetireBlock(v, 1)
}

func TestDropUnmapped(t *testing.T) {
	p := NewPhys(false)
	frames := p.Alloc(8)
	if p.LivePages() != 8 {
		t.Fatal("alloc accounting wrong")
	}
	p.DropUnmapped(frames)
	if p.LivePages() != 0 {
		t.Fatalf("live = %d after drop", p.LivePages())
	}
}

// Property: any sequence of reserve/map/write/read roundtrips bytes exactly,
// and unmapping everything returns live pages to zero.
func TestQuickMapWriteReadRoundtrip(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		p := NewPhys(true)
		s := NewAddrSpace(p)
		type blk struct {
			v     uint64
			pages int
			data  []byte
		}
		var blocks []blk
		for i, raw := range sizes {
			pages := int(raw%4) + 1
			v := s.ReserveBlock(pages)
			s.Map(v, p.Alloc(pages))
			data := make([]byte, pages*PageSize)
			for j := range data {
				data[j] = byte(int(seed) + i + j)
			}
			if err := s.WriteAt(v, data); err != nil {
				return false
			}
			blocks = append(blocks, blk{v, pages, data})
			if len(blocks) >= 8 {
				break
			}
		}
		for _, b := range blocks {
			got := make([]byte, len(b.data))
			if err := s.ReadAt(b.v, got); err != nil || !bytes.Equal(got, b.data) {
				return false
			}
		}
		for _, b := range blocks {
			s.Unmap(b.v, b.pages)
		}
		return p.LivePages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: remapping a chain of aliases onto a single frame keeps exactly
// one live page, and every alias reads the same data.
func TestQuickAliasChain(t *testing.T) {
	f := func(n uint8, payload uint8) bool {
		count := int(n%6) + 2
		p := NewPhys(true)
		s := NewAddrSpace(p)
		var vaddrs []uint64
		for i := 0; i < count; i++ {
			v := s.ReserveBlock(1)
			s.Map(v, p.Alloc(1))
			vaddrs = append(vaddrs, v)
		}
		target, _, _ := s.Translate(vaddrs[0])
		target.data[3] = payload
		for _, v := range vaddrs[1:] {
			s.Remap(v, []*Frame{target})
		}
		if p.LivePages() != 1 {
			return false
		}
		for _, v := range vaddrs {
			var b [1]byte
			if err := s.ReadAt(v+3, b[:]); err != nil || b[0] != payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
