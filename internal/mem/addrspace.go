package mem

import (
	"fmt"
	"sync"
)

// AddrSpace is a simulated per-process virtual address space: a page table
// from virtual page numbers to physical frames, plus a bump allocator for
// fresh block-aligned virtual ranges and a reuse pool for retired ones
// (§3.3: virtual address reuse after compaction).
//
// Every mapped page carries a generation counter that increments on remap.
// The simulated RNIC snapshots (frame, generation) pairs into its MTT at
// registration time and uses the generation to detect stale translations,
// which is how ODP consistency is modeled.
type AddrSpace struct {
	mu    sync.RWMutex
	phys  *Phys
	pages map[uint64]*pte
	next  uint64 // bump pointer for fresh virtual addresses (page units)
	reuse map[int][]uint64

	// lastGen remembers the generation a page had when it was unmapped, so
	// a later re-map resumes at lastGen+1. Without this, an evict/fault-in
	// cycle would hand the RNIC a fresh mapping at generation zero and the
	// ODP staleness check (mtt gen != page gen) could not tell the new
	// frames from the ones it snapshotted before eviction.
	lastGen map[uint64]uint64

	mapped int // currently mapped pages
}

type pte struct {
	frame *Frame
	gen   uint64
}

// base of the simulated virtual arena; arbitrary non-zero 48-bit-range value
// so addresses look like real pointers and zero stays invalid.
const arenaBase = uint64(0x1000_0000_0000)

// NewAddrSpace creates an address space drawing frames from phys.
func NewAddrSpace(phys *Phys) *AddrSpace {
	return &AddrSpace{
		phys:    phys,
		pages:   make(map[uint64]*pte),
		next:    arenaBase >> PageShift,
		reuse:   make(map[int][]uint64),
		lastGen: make(map[uint64]uint64),
	}
}

// Phys returns the backing frame allocator.
func (s *AddrSpace) Phys() *Phys { return s.phys }

// ReserveBlock returns a fresh virtual address for a block of the given
// page count, aligned to the block size. Retired addresses of the same
// size are reused first (§3.3).
func (s *AddrSpace) ReserveBlock(pages int) uint64 {
	if pages <= 0 {
		panic("mem: ReserveBlock with pages <= 0")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pool := s.reuse[pages]; len(pool) > 0 {
		addr := pool[len(pool)-1]
		s.reuse[pages] = pool[:len(pool)-1]
		return addr
	}
	// Align the bump pointer to the block size so block bases can be
	// recovered from interior addresses by masking.
	p := uint64(pages)
	s.next = (s.next + p - 1) / p * p
	addr := s.next << PageShift
	s.next += p
	return addr
}

// RetireBlock returns a virtual block address to the reuse pool. The range
// must already be unmapped.
func (s *AddrSpace) RetireBlock(vaddr uint64, pages int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vp := vaddr >> PageShift
	for i := uint64(0); i < uint64(pages); i++ {
		if _, ok := s.pages[vp+i]; ok {
			panic(fmt.Sprintf("mem: RetireBlock of mapped range %#x", vaddr))
		}
	}
	s.reuse[pages] = append(s.reuse[pages], vaddr)
}

// ReusablePool reports how many retired addresses of the given page count
// are available (tests, Table 1's "vaddr reuse" property).
func (s *AddrSpace) ReusablePool(pages int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.reuse[pages])
}

// Map installs frames at vaddr (one frame per page). Each frame gains a
// reference. Mapping over an existing mapping panics; use Remap.
func (s *AddrSpace) Map(vaddr uint64, frames []*Frame) {
	if vaddr&(PageSize-1) != 0 {
		panic("mem: Map of unaligned address")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vp := vaddr >> PageShift
	for i, f := range frames {
		if _, ok := s.pages[vp+uint64(i)]; ok {
			panic(fmt.Sprintf("mem: double map at %#x", vaddr+uint64(i)*PageSize))
		}
		s.phys.incRef(f)
		gen := uint64(0)
		if last, ok := s.lastGen[vp+uint64(i)]; ok {
			gen = last + 1
			delete(s.lastGen, vp+uint64(i))
		}
		s.pages[vp+uint64(i)] = &pte{frame: f, gen: gen}
		s.mapped++
	}
}

// Remap points an existing mapping at new frames, bumping each page's
// generation: this is the mmap-over + MTT-invalidation step of compaction.
// Old frames lose a reference (and are recycled at zero).
func (s *AddrSpace) Remap(vaddr uint64, frames []*Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vp := vaddr >> PageShift
	for i, f := range frames {
		e, ok := s.pages[vp+uint64(i)]
		if !ok {
			panic(fmt.Sprintf("mem: Remap of unmapped page %#x", vaddr+uint64(i)*PageSize))
		}
		old := e.frame
		s.phys.incRef(f)
		e.frame = f
		e.gen++
		s.phys.decRef(old)
	}
}

// Unmap removes the mapping for pages pages at vaddr, dropping frame
// references.
func (s *AddrSpace) Unmap(vaddr uint64, pages int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vp := vaddr >> PageShift
	for i := 0; i < pages; i++ {
		e, ok := s.pages[vp+uint64(i)]
		if !ok {
			panic(fmt.Sprintf("mem: Unmap of unmapped page %#x", vaddr+uint64(i)*PageSize))
		}
		s.phys.decRef(e.frame)
		s.lastGen[vp+uint64(i)] = e.gen
		delete(s.pages, vp+uint64(i))
		s.mapped--
	}
}

// Translate resolves a virtual address to its frame and in-page offset.
func (s *AddrSpace) Translate(vaddr uint64) (*Frame, int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.pages[vaddr>>PageShift]
	if !ok {
		return nil, 0, false
	}
	return e.frame, int(vaddr & (PageSize - 1)), true
}

// TranslateEntry additionally returns the page generation, for the RNIC's
// MTT mirroring.
func (s *AddrSpace) TranslateEntry(vaddr uint64) (*Frame, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.pages[vaddr>>PageShift]
	if !ok {
		return nil, 0, false
	}
	return e.frame, e.gen, true
}

// MappedPages reports the number of live page-table entries.
func (s *AddrSpace) MappedPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mapped
}

// ReadAt copies len(buf) bytes from virtual address vaddr, crossing page
// boundaries as needed. It fails if any page is unmapped or the space is
// not byte-backed.
func (s *AddrSpace) ReadAt(vaddr uint64, buf []byte) error {
	return s.access(vaddr, buf, false)
}

// WriteAt copies buf into virtual memory at vaddr.
func (s *AddrSpace) WriteAt(vaddr uint64, buf []byte) error {
	return s.access(vaddr, buf, true)
}

func (s *AddrSpace) access(vaddr uint64, buf []byte, write bool) error {
	if !s.phys.Backed() {
		return fmt.Errorf("mem: data access in accounting-only mode")
	}
	done := 0
	for done < len(buf) {
		f, off, ok := s.Translate(vaddr + uint64(done))
		if !ok {
			return fmt.Errorf("mem: page fault at %#x", vaddr+uint64(done))
		}
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if write {
			f.WriteBytes(off, buf[done:done+n])
		} else {
			f.ReadBytes(off, buf[done:done+n])
		}
		done += n
	}
	return nil
}
