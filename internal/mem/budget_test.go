package mem

import (
	"strings"
	"sync"
	"testing"
)

// TestBudgetInvokesReclaimer pins the soft-budget contract: an Alloc that
// would overshoot invokes the reclaimer for the shortfall, and succeeds
// regardless of whether reclaim delivered.
func TestBudgetInvokesReclaimer(t *testing.T) {
	p := NewPhys(false)
	s := NewAddrSpace(p)
	p.SetBudget(4)

	var asked []int
	victims := []uint64{}
	p.SetReclaimer(func(need int) int {
		asked = append(asked, need)
		if len(victims) == 0 {
			return 0
		}
		v := victims[len(victims)-1]
		victims = victims[:len(victims)-1]
		s.Unmap(v, 2)
		return 2
	})

	v1 := s.ReserveBlock(2)
	s.Map(v1, p.Alloc(2))
	v2 := s.ReserveBlock(2)
	s.Map(v2, p.Alloc(2))
	if len(asked) != 0 {
		t.Fatalf("reclaim invoked below budget: %v", asked)
	}

	// Third block overshoots; the reclaimer evicts v1 and the allocation
	// lands back inside the budget.
	victims = append(victims, v1)
	v3 := s.ReserveBlock(2)
	s.Map(v3, p.Alloc(2))
	if len(asked) != 1 || asked[0] != 2 {
		t.Fatalf("reclaim asks = %v, want [2]", asked)
	}
	if p.LivePages() != 4 {
		t.Fatalf("live = %d, want 4", p.LivePages())
	}
	if p.BudgetOverruns() != 0 {
		t.Fatalf("overruns = %d, want 0", p.BudgetOverruns())
	}

	// With nothing left to evict the budget is soft: bounded retries, then
	// the allocation proceeds and the overrun is counted.
	v4 := s.ReserveBlock(2)
	s.Map(v4, p.Alloc(2))
	if p.LivePages() != 6 {
		t.Fatalf("live = %d, want 6 (soft budget)", p.LivePages())
	}
	if p.BudgetOverruns() != 1 {
		t.Fatalf("overruns = %d, want 1", p.BudgetOverruns())
	}
	if p.Reclaims() < 2 {
		t.Fatalf("reclaims = %d, want >= 2", p.Reclaims())
	}
}

// TestDoubleReleasePanics pins the frame-lifecycle guard: returning a
// frame to the free list twice must panic with the frame's identity, not
// silently corrupt the live-frame accounting.
func TestDoubleReleasePanics(t *testing.T) {
	p := NewPhys(false)
	f := p.Alloc(1)[0]
	p.mu.Lock()
	p.release(f)
	func() {
		defer p.mu.Unlock()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("double release did not panic")
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "double release") || !strings.Contains(msg, f.ID.String()) {
				t.Fatalf("panic %v does not name the frame", r)
			}
		}()
		p.release(f)
	}()
}

// TestRefToFreedFramePanics pins the companion guard: taking a mapping
// reference on a frame that is already on the free list is a
// use-after-free and must panic with the frame's identity.
func TestRefToFreedFramePanics(t *testing.T) {
	p := NewPhys(false)
	s := NewAddrSpace(p)
	frames := p.Alloc(1)
	v := s.ReserveBlock(1)
	s.Map(v, frames)
	s.Unmap(v, 1) // frame back on the free list
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mapping a freed frame did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "freed frame") || !strings.Contains(msg, frames[0].ID.String()) {
			t.Fatalf("panic %v does not name the frame", r)
		}
	}()
	s.Map(s.ReserveBlock(1), frames)
}

// TestRefcountUnderflowPanics drives decRef below zero directly.
func TestRefcountUnderflowPanics(t *testing.T) {
	p := NewPhys(false)
	f := p.Alloc(1)[0]
	p.incRef(f)
	p.decRef(f) // hits zero: released
	defer func() {
		if recover() == nil {
			t.Fatal("refcount underflow did not panic")
		}
	}()
	p.decRef(f)
}

// TestAccountingModeConcurrentRemapRelease hammers the accounting-only
// allocator (no byte backing) with concurrent remap-alias and
// unmap-release traffic — the compaction pattern — under -race. The
// invariant is purely arithmetical: after every goroutine finishes, live
// pages are exactly the still-mapped set and no panic (double release,
// freed-frame ref) fired on any interleaving.
func TestAccountingModeConcurrentRemapRelease(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
		pages   = 4
	)
	p := NewPhys(false)
	s := NewAddrSpace(p)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Allocate two blocks, alias the first onto the second's
				// frames (the merge step), then tear both down in the
				// order compaction would: alias first, then primary.
				src := s.ReserveBlock(pages)
				dst := s.ReserveBlock(pages)
				s.Map(src, p.Alloc(pages))
				dstFrames := p.Alloc(pages)
				s.Map(dst, dstFrames)
				s.Remap(src, dstFrames) // src's frames released here
				s.Unmap(src, pages)
				s.Unmap(dst, pages)
				s.RetireBlock(src, pages)
				s.RetireBlock(dst, pages)
			}
		}()
	}
	wg.Wait()
	if p.LivePages() != 0 {
		t.Fatalf("leaked %d live pages after concurrent remap/release", p.LivePages())
	}
}

// TestBudgetedAllocConcurrent races budgeted allocations against a
// reclaimer that evicts other goroutines' mappings, under -race: the
// reclaim hook runs without the allocator lock, so eviction (Unmap →
// release) interleaves freely with Alloc.
func TestBudgetedAllocConcurrent(t *testing.T) {
	const workers = 8
	p := NewPhys(false)
	s := NewAddrSpace(p)
	p.SetBudget(workers) // one page per worker: constant pressure

	var mu sync.Mutex
	mapped := []uint64{}
	p.SetReclaimer(func(need int) int {
		mu.Lock()
		defer mu.Unlock()
		freed := 0
		for freed < need && len(mapped) > 0 {
			v := mapped[len(mapped)-1]
			mapped = mapped[:len(mapped)-1]
			s.Unmap(v, 1)
			freed++
		}
		return freed
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := s.ReserveBlock(1)
				frames := p.Alloc(1)
				s.Map(v, frames)
				mu.Lock()
				mapped = append(mapped, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	remaining := len(mapped)
	mu.Unlock()
	if p.LivePages() != remaining {
		t.Fatalf("live = %d, want %d (mapped survivors)", p.LivePages(), remaining)
	}
}
