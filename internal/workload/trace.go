package workload

import "math/rand"

// TraceOp is an allocation-trace event kind.
type TraceOp int

const (
	// TAlloc allocates an object of Size bytes.
	TAlloc TraceOp = iota
	// TFree frees the Index-th successful allocation of the trace.
	TFree
)

// TraceEvent is one step of an allocation trace.
type TraceEvent struct {
	Op    TraceOp
	Size  int   // TAlloc: payload bytes
	Index int64 // TFree: which allocation to free (0-based alloc order)
}

// Trace streams allocation/deallocation events. Traces are deterministic
// given their seed.
type Trace interface {
	// Next returns the next event; ok is false at end of trace.
	Next() (ev TraceEvent, ok bool)
}

// --- Synthetic spike trace (Fig 17) ---

// SpikeTrace allocates count objects of a fixed size, then frees a random
// fraction of them in random order — the paper's allocation-spike workload
// (§4.4.2): "first allocate 8M objects of a given size and then randomly
// deallocate a fixed portion of them".
type SpikeTrace struct {
	size    int
	count   int64
	free    []int64
	pos     int64
	freePos int
}

// NewSpikeTrace builds the trace. rate is the deallocation fraction (0..1).
func NewSpikeTrace(seed int64, size int, count int64, rate float64) *SpikeTrace {
	rng := rand.New(rand.NewSource(seed))
	nFree := int64(rate * float64(count))
	perm := rng.Perm(int(count))
	free := make([]int64, nFree)
	for i := range free {
		free[i] = int64(perm[i])
	}
	return &SpikeTrace{size: size, count: count, free: free}
}

// Next implements Trace.
func (s *SpikeTrace) Next() (TraceEvent, bool) {
	if s.pos < s.count {
		s.pos++
		return TraceEvent{Op: TAlloc, Size: s.size}, true
	}
	if s.freePos < len(s.free) {
		ev := TraceEvent{Op: TFree, Index: s.free[s.freePos]}
		s.freePos++
		return ev, true
	}
	return TraceEvent{}, false
}

// --- Redis memefficiency traces (Fig 18/19, §4.4.3) ---

// program is a simple scripted trace: a slice of closures produces events.
type program struct {
	events []TraceEvent
	pos    int
}

func (p *program) Next() (TraceEvent, bool) {
	if p.pos >= len(p.events) {
		return TraceEvent{}, false
	}
	ev := p.events[p.pos]
	p.pos++
	return ev, true
}

// RedisT1 models redis-mem-t1: default Redis allocating 10,000 8-byte keys
// with values of sizes ranging from 1 B to 16 KiB. The wide size spread
// touches many size classes, which is exactly the low-class-usage
// fragmentation source of §2.1.2.
func RedisT1(seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	p := &program{}
	for i := 0; i < 10000; i++ {
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: 8})
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: 1 + rng.Intn(16*1024)})
	}
	return p
}

// RedisT2 models redis-mem-t2: Redis as a 100 MiB LRU cache, allocating
// 700,000 8-byte keys with 150-byte values, then 170,000 8-byte keys with
// 300-byte values. When the cache exceeds its capacity the oldest entries
// are evicted (freed), producing the interleaved alloc/free churn of an
// LRU cache.
func RedisT2(seed int64) Trace {
	const capacity = 100 << 20
	p := &program{}
	var allocIdx int64
	var liveBytes int64
	type entry struct {
		keyIdx, valIdx int64
		bytes          int64
	}
	var queue []entry
	head := 0
	add := func(valSize int) {
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: 8})
		keyIdx := allocIdx
		allocIdx++
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: valSize})
		valIdx := allocIdx
		allocIdx++
		e := entry{keyIdx: keyIdx, valIdx: valIdx, bytes: int64(8 + valSize)}
		queue = append(queue, e)
		liveBytes += e.bytes
		for liveBytes > capacity && head < len(queue) {
			old := queue[head]
			head++
			liveBytes -= old.bytes
			p.events = append(p.events, TraceEvent{Op: TFree, Index: old.keyIdx})
			p.events = append(p.events, TraceEvent{Op: TFree, Index: old.valIdx})
		}
	}
	for i := 0; i < 700000; i++ {
		add(150)
	}
	for i := 0; i < 170000; i++ {
		add(300)
	}
	return p
}

// RedisT3 models redis-mem-t3: 5 keys holding 160 KiB data structures,
// then 50,000 keys with 150-byte values, then removal of 25,000 keys from
// the last batch.
func RedisT3(seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	p := &program{}
	var allocIdx int64
	for i := 0; i < 5; i++ {
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: 160 * 1024})
		allocIdx++
	}
	type pair struct{ keyIdx, valIdx int64 }
	var batch []pair
	for i := 0; i < 50000; i++ {
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: 8})
		k := allocIdx
		allocIdx++
		p.events = append(p.events, TraceEvent{Op: TAlloc, Size: 150})
		v := allocIdx
		allocIdx++
		batch = append(batch, pair{k, v})
	}
	for _, i := range rng.Perm(len(batch))[:25000] {
		p.events = append(p.events, TraceEvent{Op: TFree, Index: batch[i].keyIdx})
		p.events = append(p.events, TraceEvent{Op: TFree, Index: batch[i].valIdx})
	}
	return p
}

// RedisTraces names the three traces for experiment drivers.
var RedisTraces = []struct {
	Name string
	Make func(seed int64) Trace
}{
	{"redis-mem-t1", RedisT1},
	{"redis-mem-t2", RedisT2},
	{"redis-mem-t3", RedisT3},
}
