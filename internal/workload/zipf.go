// Package workload provides the request and allocation-trace generators
// used by the paper's evaluation: YCSB-style key access under uniform and
// Zipf distributions (§4.2.2), synthetic allocate-then-deallocate spike
// traces (§4.4.2), and the three Redis memefficiency traces (§4.4.3).
package workload

import (
	"math"
	"math/rand"
)

// Zipf draws keys in [0, n) with P(k) ∝ 1/(k+1)^theta, matching YCSB's
// scrambled-Zipf parameterization (theta 0.99 is YCSB's default). Keys are
// scrambled with a multiplicative hash so popular keys spread over the key
// space, as YCSB does.
type Zipf struct {
	rng      *rand.Rand
	n        uint64
	theta    float64
	alpha    float64
	zetan    float64
	eta      float64
	zeta2    float64
	scramble bool
}

// NewZipf builds a generator over n keys with the given skew.
func NewZipf(rng *rand.Rand, n uint64, theta float64, scramble bool) *Zipf {
	if n == 0 {
		panic("workload: zipf over empty key space")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: zipf theta must be in (0,1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta, scramble: scramble}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^t.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var k uint64
	switch {
	case uz < 1.0:
		k = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		k = 1
	default:
		k = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if k >= z.n {
		k = z.n - 1
	}
	if z.scramble {
		k = scramble(k) % z.n
	}
	return k
}

// scramble is a Fibonacci-hash style mix (YCSB's FNV-alike purpose).
func scramble(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Uniform draws keys uniformly over [0, n).
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform builds a uniform key generator.
func NewUniform(rng *rand.Rand, n uint64) *Uniform {
	if n == 0 {
		panic("workload: uniform over empty key space")
	}
	return &Uniform{rng: rng, n: n}
}

// Next draws the next key.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// KeyGen is the common interface of key generators.
type KeyGen interface {
	Next() uint64
}
