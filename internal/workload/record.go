package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace record/replay: a compact binary format so captured allocation
// traces (e.g. from an instrumented application) can be replayed through
// the §4.4 harnesses. Each event is one byte of opcode plus a varint:
// allocations carry the size, frees the allocation index.

const (
	recAlloc = 0x01
	recFree  = 0x02
)

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, tr Trace) (int64, error) {
	bw := bufio.NewWriter(w)
	var events int64
	var scratch [binary.MaxVarintLen64 + 1]byte
	for {
		ev, ok := tr.Next()
		if !ok {
			break
		}
		switch ev.Op {
		case TAlloc:
			scratch[0] = recAlloc
			n := binary.PutUvarint(scratch[1:], uint64(ev.Size))
			if _, err := bw.Write(scratch[:1+n]); err != nil {
				return events, err
			}
		case TFree:
			scratch[0] = recFree
			n := binary.PutUvarint(scratch[1:], uint64(ev.Index))
			if _, err := bw.Write(scratch[:1+n]); err != nil {
				return events, err
			}
		default:
			return events, fmt.Errorf("workload: unknown op %d", ev.Op)
		}
		events++
	}
	return events, bw.Flush()
}

// recordedTrace replays a serialized trace.
type recordedTrace struct {
	r    *bufio.Reader
	err  error
	done bool
}

// ReadTrace returns a Trace streaming events from r. Read errors terminate
// the stream; check Err afterwards.
func ReadTrace(r io.Reader) *recordedTrace {
	return &recordedTrace{r: bufio.NewReader(r)}
}

// Next implements Trace.
func (t *recordedTrace) Next() (TraceEvent, bool) {
	if t.done {
		return TraceEvent{}, false
	}
	op, err := t.r.ReadByte()
	if err == io.EOF {
		t.done = true
		return TraceEvent{}, false
	}
	if err != nil {
		t.fail(err)
		return TraceEvent{}, false
	}
	v, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.fail(fmt.Errorf("workload: truncated trace: %w", err))
		return TraceEvent{}, false
	}
	switch op {
	case recAlloc:
		return TraceEvent{Op: TAlloc, Size: int(v)}, true
	case recFree:
		return TraceEvent{Op: TFree, Index: int64(v)}, true
	}
	t.fail(fmt.Errorf("workload: bad opcode %#x", op))
	return TraceEvent{}, false
}

func (t *recordedTrace) fail(err error) {
	t.err = err
	t.done = true
}

// Err reports the first decode error, if any.
func (t *recordedTrace) Err() error { return t.err }
