package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestRampShape pins the diurnal curve's defining properties across a table
// of configurations: trough at t=0, crest at half period, periodicity, and
// the degenerate constant cases.
func TestRampShape(t *testing.T) {
	day := 24 * time.Hour
	cases := []struct {
		name string
		r    Ramp
	}{
		{"typical", Ramp{Base: 100, Peak: 1000, Period: day}},
		{"narrow", Ramp{Base: 990, Peak: 1000, Period: time.Minute}},
		{"fast-cycle", Ramp{Base: 10, Peak: 50, Period: 2 * time.Second}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := c.r
			if got := r.Rate(0); math.Abs(got-r.Base) > 1e-9 {
				t.Fatalf("Rate(0) = %v, want trough %v", got, r.Base)
			}
			if got := r.Rate(r.Period / 2); math.Abs(got-r.Peak) > 1e-6*r.Peak {
				t.Fatalf("Rate(P/2) = %v, want crest %v", got, r.Peak)
			}
			// Periodic: one full cycle returns to the trough.
			if got := r.Rate(r.Period); math.Abs(got-r.Base) > 1e-6*r.Peak {
				t.Fatalf("Rate(P) = %v, want trough %v", got, r.Base)
			}
			// Bounded and monotone on the climb half.
			prev := -1.0
			for i := 0; i <= 100; i++ {
				at := time.Duration(int64(r.Period) * int64(i) / 200) // [0, P/2]
				got := r.Rate(at)
				if got < r.Base-1e-9 || got > r.Peak+1e-9 {
					t.Fatalf("Rate(%v) = %v outside [%v, %v]", at, got, r.Base, r.Peak)
				}
				if got < prev-1e-9 {
					t.Fatalf("climb not monotone at %v: %v < %v", at, got, prev)
				}
				prev = got
			}
		})
	}

	for _, flat := range []Ramp{
		{Base: 500}, // no period
		{Base: 500, Peak: 100, Period: time.Hour}, // peak below base
		{Base: 500, Peak: 500, Period: time.Hour}, // peak == base
	} {
		for _, at := range []time.Duration{0, time.Second, time.Hour, 37 * time.Hour} {
			if got := flat.Rate(at); got != flat.Base {
				t.Fatalf("degenerate ramp %+v: Rate(%v) = %v, want %v", flat, at, got, flat.Base)
			}
		}
	}
}

// TestStormWindows drives a Storm with a pinned clock through its schedule:
// inactive between windows, active within them, and permanently active when
// Duration covers the whole Period.
func TestStormWindows(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return now }
	cfg := StormConfig{HotKeys: 8, Fraction: 1.0, Period: 10 * time.Second, Duration: 2 * time.Second}
	s := NewStorm(1, NewUniform(rand.New(rand.NewSource(2)), 1<<20), cfg).WithClock(clock)

	steps := []struct {
		at     time.Duration
		active bool
	}{
		{0, true}, // storms ignite at t=0
		{1900 * time.Millisecond, true},
		{2 * time.Second, false}, // window closes at Duration
		{5 * time.Second, false},
		{10 * time.Second, true}, // next period ignites
		{11 * time.Second, true},
		{12 * time.Second, false},
		{25 * time.Second, false},
		{30500 * time.Millisecond, true},
	}
	for _, st := range steps {
		now = st.at
		if got := s.Active(); got != st.active {
			t.Fatalf("Active at %v = %v, want %v", st.at, got, st.active)
		}
	}

	perm := NewStorm(1, NewUniform(rand.New(rand.NewSource(2)), 1<<20),
		StormConfig{HotKeys: 8, Fraction: 0.5, Period: time.Second, Duration: time.Second}).WithClock(clock)
	for _, at := range []time.Duration{0, 500 * time.Millisecond, 3 * time.Second} {
		now = at
		if !perm.Active() {
			t.Fatalf("Duration >= Period storm inactive at %v", at)
		}
	}
}

// TestStormRedirectsFraction: during a window roughly Fraction of draws
// land in the hot set; outside a window the wrapped generator passes
// through untouched (same stream as an unwrapped twin).
func TestStormRedirectsFraction(t *testing.T) {
	const keySpace = 1 << 20
	const hot = 16
	var now time.Duration
	cfg := StormConfig{HotKeys: hot, Fraction: 0.8, Period: 10 * time.Second, Duration: 5 * time.Second}
	s := NewStorm(7, NewUniform(rand.New(rand.NewSource(3)), keySpace), cfg).
		WithClock(func() time.Duration { return now })

	now = time.Second // mid-window
	const n = 20000
	inHot := 0
	for i := 0; i < n; i++ {
		if s.Next() < hot {
			inHot++
		}
	}
	frac := float64(inHot) / n
	// Background uniform traffic adds ~hot/keySpace ≈ 0.0015% — noise.
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction during storm = %.3f, want ≈ 0.8", frac)
	}

	// Outside the window the stream must equal the unwrapped generator's.
	now = 6 * time.Second
	quiet := NewStorm(7, NewUniform(rand.New(rand.NewSource(11)), keySpace), cfg).
		WithClock(func() time.Duration { return now })
	twin := NewUniform(rand.New(rand.NewSource(11)), keySpace)
	for i := 0; i < 1000; i++ {
		if got, want := quiet.Next(), twin.Next(); got != want {
			t.Fatalf("draw %d outside storm: %d != unwrapped %d", i, got, want)
		}
	}
}

// TestStormDeterministic: identical seeds and clock sequences produce
// identical key streams — the property soak replays depend on.
func TestStormDeterministic(t *testing.T) {
	mk := func() *Storm {
		var i int
		return NewStorm(42, NewZipf(rand.New(rand.NewSource(9)), 1<<16, 0.99, true),
			StormConfig{HotKeys: 32, Fraction: 0.5, Period: 100 * time.Millisecond, Duration: 50 * time.Millisecond}).
			WithClock(func() time.Duration {
				i++
				return time.Duration(i) * time.Millisecond
			})
	}
	a, b := mk(), mk()
	for i := 0; i < 5000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("streams diverge at draw %d: %d != %d", i, ka, kb)
		}
	}
}

// TestZipfCrossInstanceDeterminism extends the existing determinism check
// property-style across a table of (n, theta, scramble) shapes: two
// independently built generators with the same parameters must emit
// identical streams, and every draw stays in range.
func TestZipfCrossInstanceDeterminism(t *testing.T) {
	cases := []struct {
		n        uint64
		theta    float64
		scramble bool
	}{
		{1 << 10, 0.5, true},
		{1 << 10, 0.99, false},
		{1 << 20, 0.99, true},
		{999, 0.7, true}, // non-power-of-two key space
	}
	for _, c := range cases {
		a := NewZipf(rand.New(rand.NewSource(1234)), c.n, c.theta, c.scramble)
		b := NewZipf(rand.New(rand.NewSource(1234)), c.n, c.theta, c.scramble)
		for i := 0; i < 2000; i++ {
			ka, kb := a.Next(), b.Next()
			if ka != kb {
				t.Fatalf("n=%d theta=%v: streams diverge at %d", c.n, c.theta, i)
			}
			if ka >= c.n {
				t.Fatalf("n=%d theta=%v: draw %d out of range", c.n, c.theta, ka)
			}
		}
	}
}

// TestMixConvergence: the observed write fraction of a YCSB stream
// converges to the configured mix across the standard mixes and an uneven
// one, within statistical tolerance.
func TestMixConvergence(t *testing.T) {
	const n = 50000
	for _, mix := range []Mix{Mix100, Mix95, Mix50, {Read: 70, Write: 30}, {Read: 0, Write: 100}} {
		y := NewYCSB(5, 1<<16, DistZipf, 0.99, mix)
		writes := 0
		for i := 0; i < n; i++ {
			op, key := y.Next()
			if key >= 1<<16 {
				t.Fatalf("mix %v: key %d out of range", mix, key)
			}
			if op == OpWrite {
				writes++
			}
		}
		want := float64(mix.Write) / float64(mix.Read+mix.Write)
		got := float64(writes) / n
		// ±3σ of a binomial with p=want, plus exactness at the endpoints.
		if want == 0 || want == 1 {
			if got != want {
				t.Fatalf("mix %v: write fraction %v, want exactly %v", mix, got, want)
			}
			continue
		}
		sigma := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 4*sigma {
			t.Fatalf("mix %v: write fraction %.4f, want %.4f ± %.4f", mix, got, want, 4*sigma)
		}
	}
}
