package workload

import (
	"bytes"
	"testing"
)

func TestTraceRecordReplay(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSpikeTrace(3, 512, 1000, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1700 { // 1000 allocs + 700 frees
		t.Fatalf("events = %d", n)
	}
	replayed := ReadTrace(&buf)
	reference := NewSpikeTrace(3, 512, 1000, 0.7)
	for {
		a, okA := reference.Next()
		b, okB := replayed.Next()
		if okA != okB || a != b {
			t.Fatalf("replay diverged: %+v/%v vs %+v/%v", a, okA, b, okB)
		}
		if !okA {
			break
		}
	}
	if replayed.Err() != nil {
		t.Fatal(replayed.Err())
	}
}

func TestTraceReplayRedis(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, RedisT3(1)); err != nil {
		t.Fatal(err)
	}
	live, bytesLive := replay(t, ReadTrace(&buf))
	if live != 5+50000 {
		t.Fatalf("live = %d", live)
	}
	if bytesLive != int64(5*160*1024+25000*(8+150)) {
		t.Fatalf("bytes = %d", bytesLive)
	}
}

func TestTraceReplayTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteTrace(&buf, NewSpikeTrace(1, 64, 10, 0.5))
	raw := buf.Bytes()[:buf.Len()-1]
	tr := ReadTrace(bytes.NewReader(raw))
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
	}
	if tr.Err() == nil {
		t.Fatal("truncated trace decoded cleanly")
	}
}

func TestTraceReplayGarbage(t *testing.T) {
	tr := ReadTrace(bytes.NewReader([]byte{0xFF, 0x01}))
	if _, ok := tr.Next(); ok {
		t.Fatal("garbage opcode accepted")
	}
	if tr.Err() == nil {
		t.Fatal("no error reported")
	}
}
