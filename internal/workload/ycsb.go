package workload

import (
	"fmt"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind int

const (
	OpRead OpKind = iota
	OpWrite
)

// Mix is a read:write ratio, e.g. 95:5.
type Mix struct {
	Read, Write int
}

// Common mixes from the paper's Fig 12.
var (
	Mix100 = Mix{100, 0}
	Mix95  = Mix{95, 5}
	Mix50  = Mix{50, 50}
)

func (m Mix) String() string { return fmt.Sprintf("%d:%d", m.Read, m.Write) }

// YCSB generates a stream of (operation, key) pairs over a key space with
// a configurable distribution and read:write mix (§4.2.2).
type YCSB struct {
	keys KeyGen
	mix  Mix
	rng  *rand.Rand
}

// Dist selects the key distribution.
type Dist int

const (
	DistUniform Dist = iota
	DistZipf
)

func (d Dist) String() string {
	if d == DistZipf {
		return "zipf"
	}
	return "uniform"
}

// NewYCSB builds a generator. theta is only used with DistZipf. Keys are
// scrambled over the key space, as YCSB does.
func NewYCSB(seed int64, n uint64, dist Dist, theta float64, mix Mix) *YCSB {
	return newYCSB(seed, n, dist, theta, mix, true)
}

// NewYCSBUnscrambled keeps zipf ranks as raw key indices, so hot keys are
// adjacent in the key space. Experiments use it when the population's
// allocation order correlates with key rank (hot objects share memory
// pages, which is what gives the NIC translation cache its locality).
func NewYCSBUnscrambled(seed int64, n uint64, dist Dist, theta float64, mix Mix) *YCSB {
	return newYCSB(seed, n, dist, theta, mix, false)
}

func newYCSB(seed int64, n uint64, dist Dist, theta float64, mix Mix, scramble bool) *YCSB {
	rng := rand.New(rand.NewSource(seed))
	var keys KeyGen
	if dist == DistZipf {
		keys = NewZipf(rng, n, theta, scramble)
	} else {
		keys = NewUniform(rng, n)
	}
	return &YCSB{keys: keys, mix: mix, rng: rng}
}

// Next draws the next operation.
func (y *YCSB) Next() (OpKind, uint64) {
	op := OpRead
	if y.mix.Write > 0 && y.rng.Intn(y.mix.Read+y.mix.Write) >= y.mix.Read {
		op = OpWrite
	}
	return op, y.keys.Next()
}
