package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfBoundsAndDeterminism(t *testing.T) {
	f := func(seed int64, raw uint16) bool {
		n := uint64(raw)%1000 + 2
		a := NewZipf(rand.New(rand.NewSource(seed)), n, 0.99, true)
		b := NewZipf(rand.New(rand.NewSource(seed)), n, 0.99, true)
		for i := 0; i < 50; i++ {
			x, y := a.Next(), b.Next()
			if x != y || x >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewConcentration(t *testing.T) {
	// Higher theta concentrates more mass on fewer keys: the fraction of
	// accesses hitting the hottest 1% of keys should grow with theta.
	n := uint64(10000)
	hot := func(theta float64) float64 {
		rng := rand.New(rand.NewSource(7))
		z := NewZipf(rng, n, theta, false) // unscrambled: key 0 is hottest
		count := 0
		total := 200000
		for i := 0; i < total; i++ {
			if z.Next() < n/100 {
				count++
			}
		}
		return float64(count) / float64(total)
	}
	h6, h99 := hot(0.6), hot(0.99)
	if h99 <= h6 {
		t.Fatalf("skew broken: hot1%%(0.99)=%v <= hot1%%(0.6)=%v", h99, h6)
	}
	if h99 < 0.3 {
		t.Fatalf("zipf 0.99 hot-1%% share = %v, want > 0.3", h99)
	}
	// Uniform reference: ~1%.
	rng := rand.New(rand.NewSource(7))
	u := NewUniform(rng, n)
	count := 0
	for i := 0; i < 200000; i++ {
		if u.Next() < n/100 {
			count++
		}
	}
	if share := float64(count) / 200000; share > 0.02 {
		t.Fatalf("uniform hot share = %v", share)
	}
}

func TestZipfScrambleSpreadsKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 1<<20, 0.99, true)
	lowHalf := 0
	for i := 0; i < 10000; i++ {
		if z.Next() < 1<<19 {
			lowHalf++
		}
	}
	// Scrambled keys should land in both halves of the key space.
	if lowHalf < 3000 || lowHalf > 7000 {
		t.Fatalf("scrambled keys skewed to one half: %d/10000", lowHalf)
	}
}

func TestYCSBMixRatios(t *testing.T) {
	for _, mix := range []Mix{Mix100, Mix95, Mix50} {
		y := NewYCSB(3, 1000, DistUniform, 0, mix)
		writes := 0
		total := 100000
		for i := 0; i < total; i++ {
			op, key := y.Next()
			if key >= 1000 {
				t.Fatal("key out of range")
			}
			if op == OpWrite {
				writes++
			}
		}
		want := float64(mix.Write) / float64(mix.Read+mix.Write)
		got := float64(writes) / float64(total)
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("mix %v: write share %v, want ~%v", mix, got, want)
		}
	}
}

func TestSpikeTraceShape(t *testing.T) {
	tr := NewSpikeTrace(5, 256, 1000, 0.7)
	allocs, frees := 0, 0
	seen := make(map[int64]bool)
	for {
		ev, ok := tr.Next()
		if !ok {
			break
		}
		switch ev.Op {
		case TAlloc:
			if frees > 0 {
				t.Fatal("alloc after frees started: spike trace is two-phase")
			}
			if ev.Size != 256 {
				t.Fatal("wrong size")
			}
			allocs++
		case TFree:
			if ev.Index < 0 || ev.Index >= 1000 || seen[ev.Index] {
				t.Fatalf("bad free index %d", ev.Index)
			}
			seen[ev.Index] = true
			frees++
		}
	}
	if allocs != 1000 || frees != 700 {
		t.Fatalf("allocs=%d frees=%d, want 1000/700", allocs, frees)
	}
}

// replay validates a trace is well-formed: frees reference prior allocs,
// no double frees. Returns live object count and byte total.
func replay(t *testing.T, tr Trace) (live int64, bytes int64) {
	t.Helper()
	var sizes []int
	freed := make(map[int64]bool)
	for {
		ev, ok := tr.Next()
		if !ok {
			break
		}
		switch ev.Op {
		case TAlloc:
			if ev.Size <= 0 {
				t.Fatalf("bad alloc size %d", ev.Size)
			}
			sizes = append(sizes, ev.Size)
			live++
			bytes += int64(ev.Size)
		case TFree:
			if ev.Index < 0 || ev.Index >= int64(len(sizes)) {
				t.Fatalf("free of future alloc %d", ev.Index)
			}
			if freed[ev.Index] {
				t.Fatalf("double free of %d", ev.Index)
			}
			freed[ev.Index] = true
			live--
			bytes -= int64(sizes[ev.Index])
		}
	}
	return live, bytes
}

func TestRedisT1WellFormed(t *testing.T) {
	live, bytes := replay(t, RedisT1(1))
	if live != 20000 { // 10k keys + 10k values
		t.Fatalf("live = %d", live)
	}
	// Expected ~10k * (8 + ~8KiB avg).
	if bytes < 60<<20 || bytes > 110<<20 {
		t.Fatalf("t1 bytes = %d MiB", bytes>>20)
	}
}

func TestRedisT2LRUCapacity(t *testing.T) {
	live, bytes := replay(t, RedisT2(1))
	if bytes > 100<<20 {
		t.Fatalf("t2 exceeded LRU capacity: %d MiB live", bytes>>20)
	}
	if bytes < 90<<20 {
		t.Fatalf("t2 cache underfull: %d MiB", bytes>>20)
	}
	if live == 0 {
		t.Fatal("t2 evicted everything")
	}
}

func TestRedisT3Shape(t *testing.T) {
	live, bytes := replay(t, RedisT3(1))
	// 5 big + 50k pairs - 25k pairs removed = 5 + 50000*2 - 25000*2.
	if live != 5+50000 {
		t.Fatalf("live = %d, want %d", live, 5+50000)
	}
	want := int64(5*160*1024 + 25000*(8+150))
	if bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
}

func TestTracesDeterministic(t *testing.T) {
	for _, tc := range RedisTraces {
		a, b := tc.Make(9), tc.Make(9)
		for {
			ea, oka := a.Next()
			eb, okb := b.Next()
			if oka != okb || ea != eb {
				t.Fatalf("%s not deterministic", tc.Name)
			}
			if !oka {
				break
			}
		}
	}
}
