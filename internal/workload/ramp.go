package workload

import (
	"math"
	"math/rand"
	"time"
)

// Production traffic is not a constant offered load: it breathes on a
// diurnal cycle and occasionally piles onto a handful of keys when
// something goes viral. Ramp and Storm model those two shapes so soak
// scenarios can drive the system the way real tenants would.

// Ramp is a diurnal offered-load curve: the rate swings sinusoidally from
// Base (the overnight trough) up to Peak (the daily crest) and back, once
// per Period. Rate(0) == Base — a scenario starts at the trough and climbs.
type Ramp struct {
	// Base is the trough rate in ops/sec.
	Base float64
	// Peak is the crest rate in ops/sec. Peak <= Base degenerates to a
	// constant Base.
	Peak float64
	// Period is one full day of the simulated cycle.
	Period time.Duration
}

// Rate evaluates the curve at an elapsed offset from the scenario start.
// The curve is 1-cos so it is smooth at the trough (no rate discontinuity
// at t=0) and spends equal time above and below the midpoint.
func (r Ramp) Rate(elapsed time.Duration) float64 {
	if r.Period <= 0 || r.Peak <= r.Base {
		return r.Base
	}
	phase := 2 * math.Pi * float64(elapsed) / float64(r.Period)
	return r.Base + (r.Peak-r.Base)*(1-math.Cos(phase))/2
}

// StormConfig shapes a recurring hot-key storm.
type StormConfig struct {
	// HotKeys is the size of the hot set: keys [0, HotKeys) of the
	// underlying key space.
	HotKeys uint64
	// Fraction of draws redirected to the hot set while a storm is
	// active, in [0, 1].
	Fraction float64
	// Period is the storm recurrence interval; a storm ignites at every
	// multiple of Period, starting at t=0.
	Period time.Duration
	// Duration is how long each storm burns. Duration >= Period storms
	// permanently.
	Duration time.Duration
}

// Storm wraps a KeyGen and, during recurring storm windows, redirects a
// fraction of draws onto a small hot set — the "everyone loads the same
// page" event. Outside storm windows it is transparent. Deterministic for
// a fixed seed and clock sequence.
type Storm struct {
	inner KeyGen
	cfg   StormConfig
	rng   *rand.Rand
	start time.Time
	// elapsed reports time since the storm schedule began; injectable so
	// tests pin windows without sleeping.
	elapsed func() time.Duration
}

// NewStorm wraps inner with a storm schedule starting now.
func NewStorm(seed int64, inner KeyGen, cfg StormConfig) *Storm {
	s := &Storm{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	s.start = time.Now()
	s.elapsed = func() time.Duration { return time.Since(s.start) }
	return s
}

// WithClock replaces the elapsed-time source (deterministic tests).
func (s *Storm) WithClock(elapsed func() time.Duration) *Storm {
	s.elapsed = elapsed
	return s
}

// Active reports whether a storm window is currently burning.
func (s *Storm) Active() bool {
	if s.cfg.Period <= 0 || s.cfg.Duration <= 0 || s.cfg.HotKeys == 0 || s.cfg.Fraction <= 0 {
		return false
	}
	if s.cfg.Duration >= s.cfg.Period {
		return true
	}
	return s.elapsed()%s.cfg.Period < s.cfg.Duration
}

// Next draws the next key: from the hot set with probability Fraction
// while a storm is active, from the wrapped generator otherwise.
func (s *Storm) Next() uint64 {
	if s.Active() && s.rng.Float64() < s.cfg.Fraction {
		return uint64(s.rng.Int63n(int64(s.cfg.HotKeys)))
	}
	return s.inner.Next()
}
