// Package farm provides the FaRM baseline the paper compares against
// (§4.2, Fig 11). FaRM is not open source; like the authors, we emulate it
// from public information: the same two-level allocator and FaRM-style
// per-cacheline version consistency for one-sided reads, but *no* memory
// compaction, no object IDs, and no virtual-address reuse. Its mitigation
// for unpopular size classes — pinning them to specific threads (§5) — is
// modeled by PinClasses.
package farm

import (
	"corm/internal/core"
	"corm/internal/timing"
)

// Config returns a store configuration that behaves like FaRM: compaction
// disabled, headers without object IDs. FaRM's defaults in the paper use
// 1 MiB blocks; latency experiments configure 4 KiB like CoRM's.
func Config(model timing.Model) core.Config {
	return core.Config{
		Workers:    8,
		BlockBytes: 1 << 20,
		Strategy:   core.StrategyNone,
		DataBacked: true,
		Remap:      core.RemapRereg, // never used: no compaction
		Model:      model,
	}
}

// New builds the FaRM-baseline store.
func New(model timing.Model, mutate func(*core.Config)) (*core.Store, error) {
	cfg := Config(model)
	if mutate != nil {
		mutate(&cfg)
	}
	return core.NewStore(cfg)
}

// PinClasses models FaRM's mitigation for unpopular size classes: all
// allocations of the listed classes are routed to a single thread, so at
// most one block per class is scarcely used instead of one per thread.
// It returns the thread to use for a size, given the preferred thread.
type PinClasses struct {
	pinned map[int]bool // class size -> pinned
	target int
}

// NewPinClasses pins the given payload sizes to thread target.
func NewPinClasses(sizes []int, target int) *PinClasses {
	p := &PinClasses{pinned: make(map[int]bool), target: target}
	for _, s := range sizes {
		p.pinned[s] = true
	}
	return p
}

// Route returns the thread that should serve an allocation of size.
func (p *PinClasses) Route(size, preferred int) int {
	if p.pinned[size] {
		return p.target
	}
	return preferred
}
