package farm

import (
	"bytes"
	"testing"

	"corm/internal/core"
	"corm/internal/timing"
)

func TestFarmNeverCompacts(t *testing.T) {
	s, err := New(timing.Default(), func(c *core.Config) { c.BlockBytes = 4096 })
	if err != nil {
		t.Fatal(err)
	}
	per := s.Allocator().Config().SlotsPerBlock(64)
	var addrs []core.Addr
	for i := 0; i < 6*per; i++ {
		r, err := s.AllocOn(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, r.Addr)
	}
	for i := range addrs {
		if i%per != 0 {
			if err := s.Free(&addrs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	class := s.Allocator().Config().ClassFor(64)
	r := s.CompactClass(core.CompactOptions{Class: class, Leader: 0})
	if r.Collected != 0 || r.BlocksFreed != 0 {
		t.Fatalf("FaRM compacted: %+v", r)
	}
}

func TestFarmConsistencyCheckStillWorks(t *testing.T) {
	// FaRM shares CoRM's cacheline-version consistency for one-sided reads.
	s, err := New(timing.Default(), func(c *core.Config) { c.BlockBytes = 4096 })
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.AllocOn(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	addr := r.Addr
	payload := bytes.Repeat([]byte{9}, 128)
	if err := s.Write(&addr, payload); err != nil {
		t.Fatal(err)
	}
	client := s.ConnectClient()
	buf := make([]byte, 128)
	if _, err := client.DirectRead(addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("FaRM one-sided read mismatch")
	}
}

func TestFarmPointersNeverIndirect(t *testing.T) {
	s, _ := New(timing.Default(), func(c *core.Config) { c.BlockBytes = 4096 })
	r, _ := s.AllocOn(0, 64)
	addr := r.Addr
	buf := make([]byte, 64)
	if _, err := s.Read(&addr, buf); err != nil {
		t.Fatal(err)
	}
	if addr.HasFlag(core.FlagIndirectObserved) {
		t.Fatal("FaRM pointer went indirect")
	}
	if s.Stats().Corrections != 0 {
		t.Fatal("FaRM performed pointer correction")
	}
}

func TestPinClasses(t *testing.T) {
	p := NewPinClasses([]int{24, 384}, 0)
	if p.Route(24, 5) != 0 || p.Route(384, 7) != 0 {
		t.Fatal("pinned classes not routed to target")
	}
	if p.Route(64, 5) != 5 {
		t.Fatal("unpinned class rerouted")
	}
}

func TestPinClassesReduceFragmentation(t *testing.T) {
	// The §5 scenario: T threads each allocate one object of an unpopular
	// class. Unpinned: T blocks; pinned: 1 block.
	build := func(pin *PinClasses) int64 {
		s, _ := New(timing.Default(), func(c *core.Config) {
			c.BlockBytes = 4096
			c.Workers = 8
		})
		for th := 0; th < 8; th++ {
			target := th
			if pin != nil {
				target = pin.Route(384, th)
			}
			if _, err := s.AllocOn(target, 384); err != nil {
				panic(err)
			}
		}
		return s.ActiveBytes()
	}
	unpinned := build(nil)
	pinned := build(NewPinClasses([]int{384}, 0))
	if pinned >= unpinned {
		t.Fatalf("pinning did not reduce memory: %d vs %d", pinned, unpinned)
	}
}
