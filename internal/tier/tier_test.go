package tier

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"corm/internal/mem"
)

func patterned(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%7)
	}
	return b
}

func testTierRoundtrip(t *testing.T, tr Tier) {
	t.Helper()
	a := patterned(2*mem.PageSize, 3)
	b := patterned(mem.PageSize, 9)
	if err := tr.Put(0x1000, a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(0x2000, b); err != nil {
		t.Fatal(err)
	}
	if tr.Blocks() != 2 {
		t.Fatalf("blocks = %d, want 2", tr.Blocks())
	}
	got := make([]byte, len(a))
	if err := tr.Get(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("roundtrip mismatch")
	}
	// Replacement updates accounting rather than double-counting.
	if err := tr.Put(0x1000, b); err != nil {
		t.Fatal(err)
	}
	if tr.Blocks() != 2 {
		t.Fatalf("blocks after replace = %d, want 2", tr.Blocks())
	}
	got = make([]byte, len(b))
	if err := tr.Get(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("replace mismatch")
	}
	if err := tr.Get(0xdead, got); err == nil {
		t.Fatal("Get of unknown key succeeded")
	}
	tr.Delete(0x1000)
	if tr.Blocks() != 1 {
		t.Fatalf("blocks after delete = %d, want 1", tr.Blocks())
	}
	if err := tr.Get(0x1000, got); err == nil {
		t.Fatal("Get after delete succeeded")
	}
	tr.Delete(0x1000) // idempotent
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedRoundtrip(t *testing.T) {
	c := NewCompressed()
	testTierRoundtrip(t, c)
}

func TestCompressedActuallyCompresses(t *testing.T) {
	c := NewCompressed()
	// A zero-heavy page, as cold blocks tend to be.
	if err := c.Put(1, make([]byte, 16*mem.PageSize)); err != nil {
		t.Fatal(err)
	}
	if c.StoredBytes() >= 16*mem.PageSize/4 {
		t.Fatalf("stored %d bytes for a zeroed 64 KiB image", c.StoredBytes())
	}
}

func TestDiskRoundtrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testTierRoundtrip(t, d)
}

func TestDiskOwnedDirRemovedOnClose(t *testing.T) {
	d, err := NewDisk("")
	if err != nil {
		t.Fatal(err)
	}
	dir := d.Dir()
	if err := d.Put(7, patterned(mem.PageSize, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "block-0000000000000007.spill")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("owned spill dir survived Close: %v", err)
	}
}

func TestOpenSpecs(t *testing.T) {
	if tr, err := Open(""); err != nil || tr != nil {
		t.Fatalf("Open(\"\") = %v, %v", tr, err)
	}
	if tr, err := Open("off"); err != nil || tr != nil {
		t.Fatalf("Open(off) = %v, %v", tr, err)
	}
	tr, err := Open("compressed")
	if err != nil || tr == nil || tr.Name() != "compressed" {
		t.Fatalf("Open(compressed) = %v, %v", tr, err)
	}
	dir := t.TempDir()
	tr, err = Open("disk:" + dir)
	if err != nil || tr.Name() != "disk" {
		t.Fatalf("Open(disk:) = %v, %v", tr, err)
	}
	if tr.(*Disk).Dir() != dir {
		t.Fatalf("disk dir = %s, want %s", tr.(*Disk).Dir(), dir)
	}
	tr.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("Close removed a caller-owned directory")
	}
	if _, err := Open("tape"); err == nil {
		t.Fatal("Open accepted unknown spec")
	}
}

// newTestResidency maps pages-sized blocks into a fresh byte-backed space.
func newTestResidency(t *testing.T, blocks, pages int) (*Residency, *mem.AddrSpace, []*Handle) {
	t.Helper()
	space := mem.NewAddrSpace(mem.NewPhys(true))
	r := NewResidency(space, NewCompressed())
	handles := make([]*Handle, blocks)
	for i := range handles {
		v := space.ReserveBlock(pages)
		space.Map(v, space.Phys().Alloc(pages))
		handles[i] = r.Register(v, pages, i%3)
	}
	return r, space, handles
}

func TestSpillOutFaultInRoundtrip(t *testing.T) {
	r, space, hs := newTestResidency(t, 1, 2)
	h := hs[0]
	payload := patterned(2*mem.PageSize, 42)
	if err := space.WriteAt(h.Base(), payload); err != nil {
		t.Fatal(err)
	}

	if err := r.SpillOut(h); err != nil {
		t.Fatal(err)
	}
	if h.State() != Evicted {
		t.Fatalf("state = %v, want evicted", h.State())
	}
	if space.Phys().LivePages() != 0 {
		t.Fatalf("frames not released: %d", space.Phys().LivePages())
	}
	if err := space.ReadAt(h.Base(), make([]byte, 1)); err == nil {
		t.Fatal("evicted vaddr still readable")
	}
	if err := r.SpillOut(h); err == nil {
		t.Fatal("double spill-out succeeded")
	}

	if err := r.FaultIn(h); err != nil {
		t.Fatal(err)
	}
	if h.State() != Resident {
		t.Fatalf("state = %v, want resident", h.State())
	}
	got := make([]byte, len(payload))
	if err := space.ReadAt(h.Base(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bytes corrupted across spill/fault cycle")
	}
	if err := r.FaultIn(h); err != nil {
		t.Fatal("re-fault-in of resident block should be a no-op")
	}

	st := r.Stats()
	if st.SpillOuts != 1 || st.FaultIns != 1 || st.EvictedBlocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSpilled != 2*mem.PageSize || st.BytesRestored != 2*mem.PageSize {
		t.Fatalf("byte accounting = %+v", st)
	}
}

// TestFaultInFailureStaysEvicted pins the error path: if the spilled
// image is gone, fault-in must roll the mapping back and stay evicted
// rather than serve zeroed frames.
func TestFaultInFailureStaysEvicted(t *testing.T) {
	r, space, hs := newTestResidency(t, 1, 1)
	h := hs[0]
	if err := r.SpillOut(h); err != nil {
		t.Fatal(err)
	}
	r.Tier().Delete(h.Base()) // sabotage
	if err := r.FaultIn(h); err == nil {
		t.Fatal("fault-in of deleted image succeeded")
	}
	if h.State() != Evicted {
		t.Fatalf("state = %v, want evicted after failed fault-in", h.State())
	}
	if space.Phys().LivePages() != 0 {
		t.Fatalf("failed fault-in leaked %d frames", space.Phys().LivePages())
	}
}

// TestClockSecondChance pins the victim policy: banked lives are spent
// before eviction, so an untouched block goes first and a touched block
// survives extra laps.
func TestClockSecondChance(t *testing.T) {
	r, _, hs := newTestResidency(t, 3, 1)
	// Drain registration credit so every block is evictable.
	for drained := 0; drained < 3; {
		h := r.NextVictim()
		if h == nil {
			t.Fatal("no victim while draining")
		}
		drained++
	}
	// Touch block 1 repeatedly: it must outlive the untouched ones.
	hs[1].Touch()
	hs[1].Touch()
	seen := map[*Handle]int{}
	for i := 0; i < 2; i++ {
		h := r.NextVictim()
		if h == nil {
			t.Fatal("no victim")
		}
		seen[h]++
		if err := r.SpillOut(h); err != nil {
			t.Fatal(err)
		}
	}
	if seen[hs[1]] != 0 {
		t.Fatal("touched block evicted before untouched peers")
	}
	// With only the touched block left, its lives drain and it goes too.
	h := r.NextVictim()
	if h != hs[1] {
		t.Fatalf("victim = %v, want the touched block once lives drain", h)
	}
}

// TestClockSkipsNonResident pins that evicted and faulting blocks are
// invisible to the sweep.
func TestClockSkipsNonResident(t *testing.T) {
	r, _, hs := newTestResidency(t, 2, 1)
	if err := r.SpillOut(hs[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if h := r.NextVictim(); h == hs[0] {
			t.Fatal("evicted block offered as victim")
		}
	}
	if err := r.SpillOut(hs[1]); err != nil {
		t.Fatal(err)
	}
	if h := r.NextVictim(); h != nil {
		t.Fatalf("victim %v with nothing resident", h)
	}
}

func TestRelabelSetsHotByClass(t *testing.T) {
	r, _, hs := newTestResidency(t, 6, 1) // classes 0,1,2,0,1,2
	r.Relabel(func(class int) bool { return class == 1 })
	for i, h := range hs {
		want := i%3 == 1
		if h.Hot() != want {
			t.Fatalf("handle %d hot = %v, want %v", i, h.Hot(), want)
		}
	}
	// Hot blocks are spared the first lap but still evictable eventually.
	for drained := 0; drained < len(hs); {
		if r.NextVictim() != nil {
			drained++
		}
	}
	victims := 0
	for r.NextVictim() != nil {
		h := r.NextVictim()
		if h == nil {
			break
		}
		if err := r.SpillOut(h); err != nil {
			t.Fatal(err)
		}
		victims++
	}
	if r.Stats().EvictedBlocks == 0 {
		t.Fatal("hot labels made everything unevictable")
	}
}

func TestUnregisterDropsSpill(t *testing.T) {
	r, _, hs := newTestResidency(t, 2, 1)
	if err := r.SpillOut(hs[0]); err != nil {
		t.Fatal(err)
	}
	if r.Tier().Blocks() != 1 {
		t.Fatal("spill image missing")
	}
	r.Unregister(hs[0])
	if r.Tier().Blocks() != 0 {
		t.Fatal("Unregister leaked the spill image")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
	if r.Stats().EvictedBlocks != 0 {
		t.Fatal("evicted gauge not decremented on unregister")
	}
	if r.Lookup(hs[0].Base()) != nil {
		t.Fatal("lookup finds unregistered block")
	}
	if r.Lookup(hs[1].Base()) != hs[1] {
		t.Fatal("lookup lost surviving block")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	r, _, hs := newTestResidency(t, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register(hs[0].Base(), 1, 0)
}
