package tier

import (
	"fmt"
	"sync"
	"sync/atomic"

	"corm/internal/mem"
)

// State is a block's residency state. Transitions happen only while the
// caller holds the block's write lock (the same per-block lock the store
// and compaction executor already take), so the atomic here is for lock-
// free observers (the clock hand, fast-path checks), not for arbitration.
type State int32

const (
	// Resident: frames mapped, bytes live in RAM.
	Resident State = iota
	// Evicted: frames released, bytes live in the tier.
	Evicted
	// Faulting: fault-in in progress (frames being allocated and filled).
	// The clock never picks a Faulting block as a victim.
	Faulting
)

func (s State) String() string {
	switch s {
	case Resident:
		return "resident"
	case Evicted:
		return "evicted"
	case Faulting:
		return "faulting"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Handle is the per-block residency record. The store keeps a pointer on
// its block state so hot-path touches are a single atomic store, with no
// map lookup.
type Handle struct {
	base  uint64
	pages int
	class int // size-class tag, for heat relabeling; opaque to this package
	state atomic.Int32
	// ref is a saturating reference counter (not a single bit): every
	// access adds a life up to refMax and every clock pass takes one, so a
	// frequently-touched block survives several untouched hand laps where
	// a plain second-chance bit would evict the warm tail of a skewed
	// working set as soon as eviction churn outpaces its re-touch rate.
	ref atomic.Int32
	hot atomic.Bool // AutoTuner hot-class label; spared on the first lap
	// pins holds the block resident across a multi-step operation that
	// cannot keep the block's rw lock the whole time — the allocator's
	// fault-then-retry loop pins between its unlocked fault-in and the
	// re-entry into the allocation critical section, or eviction thrash
	// could starve it indefinitely.
	pins atomic.Int32
}

// refMax caps the clock reference counter: a block can bank at most this
// many untouched hand passes, bounding how long a gone-cold block can
// squat on frames.
const refMax = 3

// Base returns the block's primary virtual base address (the tier key).
func (h *Handle) Base() uint64 { return h.base }

// Pages returns the block's page count.
func (h *Handle) Pages() int { return h.pages }

// Class returns the size-class tag supplied at registration.
func (h *Handle) Class() int { return h.class }

// State returns the current residency state.
func (h *Handle) State() State { return State(h.state.Load()) }

// Touch banks a clock life (saturating at refMax); called on every block
// access.
func (h *Handle) Touch() {
	for {
		v := h.ref.Load()
		if v >= refMax {
			return
		}
		if h.ref.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// Pin excludes the block from eviction until the matching Unpin. Pinning
// does not fault the block in — callers pin after ensuring residency.
func (h *Handle) Pin() { h.pins.Add(1) }

// Unpin releases a Pin.
func (h *Handle) Unpin() {
	if h.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("tier: pin underflow on block %#x", h.base))
	}
}

// Pinned reports whether any Pin is outstanding.
func (h *Handle) Pinned() bool { return h.pins.Load() > 0 }

// SetHot marks the block as belonging to a hot class (AutoTuner label).
// Hot blocks get an extra life under the clock.
func (h *Handle) SetHot(hot bool) { h.hot.Store(hot) }

// Hot reports the hot-class label.
func (h *Handle) Hot() bool { return h.hot.Load() }

// Stats is a snapshot of residency-manager activity.
type Stats struct {
	SpillOuts     int64 // blocks evicted to the tier
	FaultIns      int64 // blocks faulted back in
	BytesSpilled  int64 // logical bytes written out (pre-compression)
	BytesRestored int64 // logical bytes read back
	EvictedBlocks int64 // blocks currently evicted
}

// Residency tracks which registered blocks are resident and picks eviction
// victims with a clock (second-chance) sweep. Spill-out and fault-in move
// whole blocks between mapped frames and the tier; the caller serializes
// both against data access with the block's own write lock, which is what
// "serializes fault-in against concurrent eviction" means in practice:
// both transitions need the same lock.
type Residency struct {
	space *mem.AddrSpace
	tier  Tier

	mu    sync.Mutex
	ring  []*Handle
	index map[uint64]*Handle
	hand  int

	spillOuts     atomic.Int64
	faultIns      atomic.Int64
	bytesSpilled  atomic.Int64
	bytesRestored atomic.Int64
	evicted       atomic.Int64
}

// NewResidency creates a residency manager spilling into t (which must be
// non-nil) for blocks mapped in space.
func NewResidency(space *mem.AddrSpace, t Tier) *Residency {
	if t == nil {
		panic("tier: NewResidency with nil tier")
	}
	return &Residency{space: space, tier: t, index: make(map[uint64]*Handle)}
}

// Tier returns the spill tier.
func (r *Residency) Tier() Tier { return r.tier }

// Register adds a resident block to the clock ring and returns its handle.
// class is an opaque size-class tag used by Relabel.
func (r *Residency) Register(base uint64, pages, class int) *Handle {
	h := &Handle{base: base, pages: pages, class: class}
	h.ref.Store(2)
	r.mu.Lock()
	if _, ok := r.index[base]; ok {
		r.mu.Unlock()
		panic(fmt.Sprintf("tier: duplicate residency registration for %#x", base))
	}
	r.index[base] = h
	r.ring = append(r.ring, h)
	r.mu.Unlock()
	return h
}

// Unregister removes a block (being released or dissolved by compaction)
// and drops any spilled image. The caller must have faulted the block in
// first if its frames are about to be unmapped by the release path.
func (r *Residency) Unregister(h *Handle) {
	r.mu.Lock()
	delete(r.index, h.base)
	for i, x := range r.ring {
		if x == h {
			r.ring[i] = r.ring[len(r.ring)-1]
			r.ring = r.ring[:len(r.ring)-1]
			break
		}
	}
	r.mu.Unlock()
	if h.State() == Evicted {
		r.evicted.Add(-1)
	}
	r.tier.Delete(h.base)
}

// Relabel refreshes every handle's hot bit from a per-class predicate —
// how the AutoTuner's hot/cold class labels reach the clock.
func (r *Residency) Relabel(isHot func(class int) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.ring {
		h.hot.Store(isHot(h.class))
	}
}

// Lookup returns the handle registered for base, or nil.
func (r *Residency) Lookup(base uint64) *Handle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.index[base]
}

// Len reports how many blocks are registered.
func (r *Residency) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// NextVictim advances the clock hand and returns the next eviction
// candidate, or nil when no resident block is evictable. Referenced blocks
// spend one banked life per pass instead of being evicted; hot-class
// blocks are spared one extra lap. Enough laps run to drain a full bank
// (refMax) and still find a victim. The caller re-validates the candidate
// under the block lock — the handle may have been touched, faulted, or
// unregistered by the time the caller acts on it.
func (r *Residency) NextVictim() *Handle {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	if n == 0 {
		return nil
	}
	for lap := 0; lap <= refMax+1; lap++ {
		for i := 0; i < n; i++ {
			h := r.ring[r.hand%n]
			r.hand++
			if h.State() != Resident || h.Pinned() {
				continue
			}
			if v := h.ref.Load(); v > 0 {
				// A lost race means a concurrent Touch; either way the
				// block keeps at least one life this pass.
				h.ref.CompareAndSwap(v, v-1)
				continue
			}
			if h.hot.Load() && lap == 0 {
				continue // hot classes are spared the first lap
			}
			return h
		}
	}
	return nil
}

// SpillOut evicts a resident block: its bytes (if the space is byte-backed)
// move to the tier and its frames are unmapped, returning them to the
// budgeted allocator. The caller holds the block's write lock and has
// already checked the block is not compacting, aliased, or dissolved.
func (r *Residency) SpillOut(h *Handle) error {
	if h.State() != Resident {
		return fmt.Errorf("tier: spill-out of %s block %#x", h.State(), h.base)
	}
	if h.Pinned() {
		// The clock skips pinned blocks, but a pin can land between
		// NextVictim and the caller's lock acquisition; re-check here,
		// under the same rw hold the pinner's fault-in used.
		return fmt.Errorf("tier: spill-out of pinned block %#x", h.base)
	}
	size := h.pages * mem.PageSize
	var buf []byte
	if r.space.Phys().Backed() {
		buf = getScratch(size)
		defer putScratch(buf)
		if err := r.space.ReadAt(h.base, buf); err != nil {
			return fmt.Errorf("tier: spill-out read: %w", err)
		}
	}
	if err := r.tier.Put(h.base, buf); err != nil {
		return err
	}
	r.space.Unmap(h.base, h.pages)
	h.state.Store(int32(Evicted))
	r.spillOuts.Add(1)
	r.bytesSpilled.Add(int64(size))
	r.evicted.Add(1)
	return nil
}

// FaultIn brings an evicted block back: fresh frames are allocated (which
// may itself evict colder blocks under budget pressure), mapped at the
// same virtual base — resuming the page generations, so stale RNIC
// translations from before the eviction still miss — and refilled from the
// tier. The caller holds the block's write lock. A no-op if the block is
// already resident.
func (r *Residency) FaultIn(h *Handle) error {
	if h.State() == Resident {
		return nil
	}
	// Faulting blocks are invisible to the clock, so the frame allocation
	// below cannot pick this block as its own eviction victim.
	h.state.Store(int32(Faulting))
	frames := r.space.Phys().Alloc(h.pages)
	r.space.Map(h.base, frames)
	size := h.pages * mem.PageSize
	if r.space.Phys().Backed() {
		buf := getScratch(size)
		defer putScratch(buf)
		if err := r.tier.Get(h.base, buf); err != nil {
			// The spilled image is gone or corrupt: undo the mapping and
			// stay evicted so the failure is visible and retryable rather
			// than silently serving zeroed frames.
			r.space.Unmap(h.base, h.pages)
			h.state.Store(int32(Evicted))
			return err
		}
		if err := r.space.WriteAt(h.base, buf); err != nil {
			r.space.Unmap(h.base, h.pages)
			h.state.Store(int32(Evicted))
			return fmt.Errorf("tier: fault-in fill: %w", err)
		}
	}
	r.tier.Delete(h.base)
	h.state.Store(int32(Resident))
	// Admit with a single life: a block faulted for a one-off cold access
	// is the next thing out, while a genuinely re-warmed block banks more
	// lives with every touch. Giving fault-ins full credit would let the
	// cold rotation clog the clock and drain the warm tail's lives.
	h.ref.Store(1)
	r.faultIns.Add(1)
	r.bytesRestored.Add(int64(size))
	r.evicted.Add(-1)
	return nil
}

// scratch pools the block-image copy buffers the spill/fault paths use;
// allocating a fresh one per transition feeds the GC exactly when the
// system is busiest.
var scratch sync.Pool

func getScratch(size int) []byte {
	if b, _ := scratch.Get().([]byte); cap(b) >= size {
		return b[:size]
	}
	return make([]byte, size)
}

func putScratch(b []byte) { scratch.Put(b[:cap(b)]) }

// Stats snapshots manager activity.
func (r *Residency) Stats() Stats {
	return Stats{
		SpillOuts:     r.spillOuts.Load(),
		FaultIns:      r.faultIns.Load(),
		BytesSpilled:  r.bytesSpilled.Load(),
		BytesRestored: r.bytesRestored.Load(),
		EvictedBlocks: r.evicted.Load(),
	}
}
