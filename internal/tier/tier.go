// Package tier provides the slow-memory tiers and the residency manager
// behind CoRM's elastic-memory mode (ROADMAP item 2). A node may advertise
// more virtual blocks than it has physical frames; cold blocks spill their
// bytes into a Tier and give their frames back to the budgeted allocator,
// and a later access faults them back in. The discipline follows the
// no-pinning ODP model of NP-RDMA and the page-fault-handling literature:
// nothing is wired, a one-sided access to an evicted page simply takes the
// (simulated) fault path.
package tier

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Tier stores the byte images of evicted blocks, keyed by the block's
// virtual base address. Implementations are safe for concurrent use; the
// per-block exclusion (never spilling and filling the same key at once) is
// the Residency manager's job.
type Tier interface {
	// Name identifies the tier ("compressed", "disk") for metrics/reports.
	Name() string
	// Put stores the block image for key, replacing any previous one.
	// data may be empty in accounting-only mode.
	Put(key uint64, data []byte) error
	// Get fills buf with the stored image for key. The stored image must
	// be exactly len(buf) bytes.
	Get(key uint64, buf []byte) error
	// Delete drops the stored image for key, if any.
	Delete(key uint64)
	// Blocks reports how many block images the tier holds.
	Blocks() int
	// StoredBytes reports the physical bytes the tier occupies (after
	// compression, for the compressed tier).
	StoredBytes() int64
	// Close releases tier resources (the disk tier's spill directory).
	Close() error
}

// Open builds a tier from a spec string: "compressed" (in-memory, flate),
// "disk" (files in a fresh temp directory), "disk:<dir>" (files under
// dir), or "off"/"" for no tier (nil).
func Open(spec string) (Tier, error) {
	switch {
	case spec == "" || spec == "off":
		return nil, nil
	case spec == "compressed":
		return NewCompressed(), nil
	case spec == "disk":
		return NewDisk("")
	case strings.HasPrefix(spec, "disk:"):
		return NewDisk(strings.TrimPrefix(spec, "disk:"))
	default:
		return nil, fmt.Errorf("tier: unknown spec %q (want compressed, disk, disk:<dir>, off)", spec)
	}
}

// Compressed is an in-memory tier that flate-compresses block images —
// the "compressed RAM as a slow tier" point in the tiering design space
// (zswap-style). Cold blocks tend to carry repetitive slot headers and
// zeroed tails, so even BestSpeed usually earns several-fold headroom.
type Compressed struct {
	mu     sync.Mutex
	blobs  map[uint64][]byte
	stored int64
}

// NewCompressed creates an empty compressed in-memory tier.
func NewCompressed() *Compressed {
	return &Compressed{blobs: make(map[uint64][]byte)}
}

// Name implements Tier.
func (c *Compressed) Name() string { return "compressed" }

// flate writer/reader state is hundreds of KiB per instance (window +
// hash tables); allocating it per spill turns a busy eviction path into a
// GC storm whose pauses show up as latency spikes on *resident* reads.
// Pool and Reset instead.
var (
	flateWriters sync.Pool
	flateReaders sync.Pool
)

// Put implements Tier.
func (c *Compressed) Put(key uint64, data []byte) error {
	var blob []byte
	if len(data) > 0 {
		var buf bytes.Buffer
		w, _ := flateWriters.Get().(*flate.Writer)
		if w == nil {
			var err error
			if w, err = flate.NewWriter(&buf, flate.BestSpeed); err != nil {
				return fmt.Errorf("tier: flate init: %w", err)
			}
		} else {
			w.Reset(&buf)
		}
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("tier: compress: %w", err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("tier: compress: %w", err)
		}
		flateWriters.Put(w)
		blob = buf.Bytes()
	}
	c.mu.Lock()
	if old, ok := c.blobs[key]; ok {
		c.stored -= int64(len(old))
	}
	c.blobs[key] = blob
	c.stored += int64(len(blob))
	c.mu.Unlock()
	return nil
}

// Get implements Tier.
func (c *Compressed) Get(key uint64, buf []byte) error {
	c.mu.Lock()
	blob, ok := c.blobs[key]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("tier: no spilled image for %#x", key)
	}
	if len(buf) == 0 {
		return nil
	}
	r, _ := flateReaders.Get().(io.ReadCloser)
	if r == nil {
		r = flate.NewReader(bytes.NewReader(blob))
	} else if err := r.(flate.Resetter).Reset(bytes.NewReader(blob), nil); err != nil {
		return fmt.Errorf("tier: flate reset: %w", err)
	}
	n, err := io.ReadFull(r, buf)
	if err != nil {
		return fmt.Errorf("tier: decompress %#x after %d bytes: %w", key, n, err)
	}
	if extra, _ := io.Copy(io.Discard, r); extra != 0 {
		return fmt.Errorf("tier: spilled image for %#x is %d bytes too long", key, extra)
	}
	if err := r.Close(); err != nil {
		return err
	}
	flateReaders.Put(r)
	return nil
}

// Delete implements Tier.
func (c *Compressed) Delete(key uint64) {
	c.mu.Lock()
	if old, ok := c.blobs[key]; ok {
		c.stored -= int64(len(old))
		delete(c.blobs, key)
	}
	c.mu.Unlock()
}

// Blocks implements Tier.
func (c *Compressed) Blocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blobs)
}

// StoredBytes implements Tier.
func (c *Compressed) StoredBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stored
}

// Close implements Tier.
func (c *Compressed) Close() error {
	c.mu.Lock()
	c.blobs = make(map[uint64][]byte)
	c.stored = 0
	c.mu.Unlock()
	return nil
}

// Disk spills block images to one file per block under a directory —
// the classic swap-to-storage tier. With dir == "" it creates (and owns,
// and removes on Close) a fresh temp directory.
type Disk struct {
	dir   string
	owned bool

	mu     sync.Mutex
	sizes  map[uint64]int64
	stored int64
}

// NewDisk creates a disk tier rooted at dir, or at a fresh temp directory
// when dir is empty.
func NewDisk(dir string) (*Disk, error) {
	owned := false
	if dir == "" {
		d, err := os.MkdirTemp("", "corm-tier-")
		if err != nil {
			return nil, fmt.Errorf("tier: spill dir: %w", err)
		}
		dir, owned = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tier: spill dir: %w", err)
	}
	return &Disk{dir: dir, owned: owned, sizes: make(map[uint64]int64)}, nil
}

// Dir returns the spill directory.
func (d *Disk) Dir() string { return d.dir }

// Name implements Tier.
func (d *Disk) Name() string { return "disk" }

func (d *Disk) path(key uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("block-%016x.spill", key))
}

// Put implements Tier.
func (d *Disk) Put(key uint64, data []byte) error {
	if err := os.WriteFile(d.path(key), data, 0o600); err != nil {
		return fmt.Errorf("tier: spill write: %w", err)
	}
	d.mu.Lock()
	if old, ok := d.sizes[key]; ok {
		d.stored -= old
	}
	d.sizes[key] = int64(len(data))
	d.stored += int64(len(data))
	d.mu.Unlock()
	return nil
}

// Get implements Tier.
func (d *Disk) Get(key uint64, buf []byte) error {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return fmt.Errorf("tier: spill read %#x: %w", key, err)
	}
	if len(data) != len(buf) {
		return fmt.Errorf("tier: spilled image for %#x is %d bytes, want %d", key, len(data), len(buf))
	}
	copy(buf, data)
	return nil
}

// Delete implements Tier.
func (d *Disk) Delete(key uint64) {
	d.mu.Lock()
	if old, ok := d.sizes[key]; ok {
		d.stored -= old
		delete(d.sizes, key)
		d.mu.Unlock()
		os.Remove(d.path(key))
		return
	}
	d.mu.Unlock()
}

// Blocks implements Tier.
func (d *Disk) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sizes)
}

// StoredBytes implements Tier.
func (d *Disk) StoredBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stored
}

// Close implements Tier. An owned temp directory is removed entirely.
func (d *Disk) Close() error {
	d.mu.Lock()
	d.sizes = make(map[uint64]int64)
	d.stored = 0
	d.mu.Unlock()
	if d.owned {
		return os.RemoveAll(d.dir)
	}
	return nil
}
