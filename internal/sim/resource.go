package sim

// Resource is a FIFO multi-server resource: up to Capacity processes hold it
// concurrently; further acquirers queue in arrival order. It models worker
// pools, NIC processing engines, and locks (Capacity 1) in the CoRM
// simulations.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*Proc

	// Busy accumulates server-busy time integrated over virtual time, for
	// utilization reporting.
	busyNS    int64
	lastStamp Time
}

// NewResource creates a resource with the given server count.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: e, capacity: capacity}
}

func (r *Resource) stamp() {
	now := r.eng.Now()
	r.busyNS += int64(now-r.lastStamp) * int64(r.inUse)
	r.lastStamp = now
}

// Acquire blocks the process until a server is free. Waiters are served in
// FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// TryAcquire takes a server if one is free, without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return true
	}
	return false
}

// Release frees one server and hands it to the longest-waiting process, if
// any. It may be called from processes or event callbacks.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	if len(r.waiters) > 0 {
		// Hand the server directly to the next waiter: inUse stays
		// constant, so utilization accounting is unaffected.
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.eng.Schedule(0, func() {
			next.resume <- struct{}{}
			<-next.resume
		})
		return
	}
	r.stamp()
	r.inUse--
}

// Use acquires the resource, holds it for d of virtual time, and releases.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// InUse reports the number of busy servers.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of queued processes.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyTime returns the integral of busy servers over virtual time, in
// nanosecond-servers, up to the current instant.
func (r *Resource) BusyTime() int64 {
	r.stamp()
	return r.busyNS
}

// Utilization returns average busy servers divided by capacity over [0,now].
func (r *Resource) Utilization() float64 {
	now := r.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(int64(now)*int64(r.capacity))
}
