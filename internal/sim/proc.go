package sim

// Proc is a coroutine-style simulation process. A process runs in its own
// goroutine but the engine guarantees only one process (or event callback)
// executes at a time: the process parks whenever it waits on virtual time or
// on a resource, and the engine resumes it when the corresponding event
// fires. This gives SimPy-style sequential-looking workload code with fully
// deterministic interleaving.
type Proc struct {
	eng    *Engine
	resume chan struct{}
	done   bool
}

// Go starts fn as a simulation process. fn receives the Proc handle it must
// use for all waiting. The process begins at the current virtual time.
func (e *Engine) Go(fn func(p *Proc)) {
	p := &Proc{eng: e, resume: make(chan struct{})}
	e.procs++
	e.Schedule(0, func() {
		go func() {
			fn(p)
			p.done = true
			p.eng.procs--
			p.resume <- struct{}{} // hand control back to the engine
		}()
		<-p.resume // wait until the process parks or finishes
	})
}

// park suspends the process and returns control to the engine. The matching
// wake comes from a scheduled event sending on resume.
func (p *Proc) park() {
	p.resume <- struct{}{}
	<-p.resume
}

// wake schedules the process to resume after d of virtual time. It must be
// paired with a park on the process side.
func (p *Proc) wakeAfter(d Duration) {
	p.eng.Schedule(d, func() {
		p.resume <- struct{}{}
		<-p.resume // regain control once the process parks again or ends
	})
}

// Wait suspends the process for d of virtual time.
func (p *Proc) Wait(d Duration) {
	if p.done {
		panic("sim: Wait on finished process")
	}
	p.wakeAfter(d)
	p.park()
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Yield lets all other events scheduled for the current instant run first.
func (p *Proc) Yield() { p.Wait(0) }
