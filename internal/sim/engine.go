// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine models virtual time at nanosecond resolution. Simulation logic
// runs either as plain scheduled callbacks or as coroutine-style processes
// (Proc) that can sleep on virtual time and queue on FIFO resources, similar
// to SimPy. Exactly one process executes at a time, so simulations are fully
// deterministic regardless of the host's core count.
//
// CoRM uses the engine to reproduce the paper's cluster experiments: closed-
// loop clients, RNIC inbound/outbound engines, and RPC worker pools are all
// processes contending on resources, with service times drawn from the
// calibrated timing models in internal/timing.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts trivially
// to and from time.Duration.
type Duration = time.Duration

// Infinity is a time later than any event the engine will ever process.
const Infinity Time = math.MaxInt64

// Microseconds renders a Time as a float64 microsecond count, the unit used
// throughout the paper's figures.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Seconds renders a Time as seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq), which keeps runs reproducible.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// all interaction must happen from the goroutine calling Run (or from
// processes started with Go, which the engine serializes).
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   int // live processes, for leak detection
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after the given virtual delay. A negative delay is
// treated as zero. Scheduling is allowed from event callbacks and from
// processes (which the engine serializes), but not from foreign goroutines.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.scheduleAt(e.now+Time(d), fn)
}

func (e *Engine) scheduleAt(at Time, fn func()) {
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in time order until the queue drains, the horizon is
// passed, or Stop is called. It returns the virtual time at which it
// stopped. Events scheduled beyond the horizon remain queued.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		if next.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %d < %d", next.at, e.now))
		}
		e.now = next.at
		next.fn()
	}
	if e.now < horizon && horizon != Infinity {
		e.now = horizon
	}
	return e.now
}

// RunAll processes events until none remain.
func (e *Engine) RunAll() Time { return e.Run(Infinity) }

// Drain resumes every still-parked process by running the remaining event
// queue to exhaustion. Simulations that stop at a horizon MUST drain (or
// run their processes to natural completion): a parked process is a live
// goroutine whose closure pins the whole simulated world, which otherwise
// leaks across experiment runs. Process loops should check their own end
// condition on wake-up so draining terminates them promptly.
func (e *Engine) Drain() {
	e.RunAll()
	if e.procs != 0 {
		panic(fmt.Sprintf("sim: %d processes still parked after drain (deadlocked on a resource?)", e.procs))
	}
}

// Pending reports the number of queued events, useful in tests.
func (e *Engine) Pending() int { return len(e.queue) }

// LiveProcs reports how many processes have been started and not finished.
func (e *Engine) LiveProcs() int { return e.procs }
