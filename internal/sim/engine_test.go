package sim

import (
	"testing"
	"time"
)

func us(n int64) Duration { return Duration(n) * time.Microsecond }

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(us(30), func() { order = append(order, 3) })
	e.Schedule(us(10), func() { order = append(order, 1) })
	e.Schedule(us(20), func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != Time(30*time.Microsecond) {
		t.Fatalf("clock = %v, want 30us", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(us(5), func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(us(100), func() { fired = true })
	e.Run(Time(50 * time.Microsecond))
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != Time(50*time.Microsecond) {
		t.Fatalf("clock should advance to horizon, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunAll()
	if !fired {
		t.Fatal("event did not fire after resuming")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Schedule(us(1), func() {
		at = append(at, e.Now())
		e.Schedule(us(2), func() { at = append(at, e.Now()) })
	})
	e.RunAll()
	if len(at) != 2 || at[0] != Time(us(1)) || at[1] != Time(us(3)) {
		t.Fatalf("nested schedule times wrong: %v", at)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(us(int64(i)), func() {
			n++
			if n == 2 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if n != 2 {
		t.Fatalf("stop did not halt the engine: ran %d events", n)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-us(5), func() { ran = true })
	e.RunAll()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay should run at t=0 (ran=%v now=%v)", ran, e.Now())
	}
}

func TestProcWaitAdvancesClock(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go(func(p *Proc) {
		marks = append(marks, p.Now())
		p.Wait(us(10))
		marks = append(marks, p.Now())
		p.Wait(us(5))
		marks = append(marks, p.Now())
	})
	e.RunAll()
	want := []Time{0, Time(us(10)), Time(us(15))}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes", e.LiveProcs())
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(us(10))
			order = append(order, "a")
		}
	})
	e.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(us(15))
			order = append(order, "b")
		}
	})
	e.RunAll()
	want := "a b a b a b" // t = 10,15,20,30,30,45 -> a,b,a,(a@30? no)
	// Times: a at 10,20,30; b at 15,30,45. At t=30, a was scheduled before b
	// in the same instant only if its wake was queued first; a's third wake
	// is queued at t=20, b's second at t=15, so b@30 queued earlier.
	want = "a b a b a b"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += " "
		}
		got += s
	}
	// a@10 b@15 a@20 a@30/b@30 (b queued first) b@45
	if got != "a b a b a b" && got != "a b a a b b" {
		t.Fatalf("order %q unexpected (want %q-like deterministic)", got, want)
	}
	// Determinism: run again and compare.
	e2 := NewEngine()
	var order2 []string
	e2.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(us(10))
			order2 = append(order2, "a")
		}
	})
	e2.Go(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(us(15))
			order2 = append(order2, "b")
		}
	})
	e2.RunAll()
	if len(order2) != len(order) {
		t.Fatal("nondeterministic run lengths")
	}
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("nondeterministic interleaving: %v vs %v", order, order2)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Go(func(p *Proc) {
			r.Use(p, us(10))
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	want := []Time{Time(us(10)), Time(us(20)), Time(us(30))}
	if len(finish) != 3 {
		t.Fatalf("finish = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceMultiServer(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Go(func(p *Proc) {
			r.Use(p, us(10))
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	// Two run [0,10], two run [10,20].
	want := []Time{Time(us(10)), Time(us(10)), Time(us(20)), Time(us(20))}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go(func(p *Proc) {
			p.Wait(us(int64(i))) // stagger arrivals
			r.Acquire(p)
			p.Wait(us(100))
			r.Release()
			order = append(order, i)
		})
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	e.Go(func(p *Proc) {
		r.Use(p, us(50))
		p.Wait(us(50))
	})
	e.RunAll()
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestManyProcsNoLeak(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	count := 0
	for i := 0; i < 200; i++ {
		e.Go(func(p *Proc) {
			for j := 0; j < 5; j++ {
				r.Use(p, us(1))
			}
			count++
		})
	}
	e.RunAll()
	if count != 200 {
		t.Fatalf("count = %d, want 200", count)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes", e.LiveProcs())
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource not drained: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}
