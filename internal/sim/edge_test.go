package sim

import "testing"

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release without acquire did not panic")
		}
	}()
	r.Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity resource accepted")
		}
	}()
	NewResource(NewEngine(), 0)
}

func TestEngineRunTwice(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(us(10), func() { n++ })
	e.RunAll()
	e.Schedule(us(10), func() { n++ })
	e.RunAll()
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	if e.Now() != Time(us(20)) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestProcSpawnsProc(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go(func(p *Proc) {
		order = append(order, "parent-start")
		p.Engine().Go(func(c *Proc) {
			order = append(order, "child-start")
			c.Wait(us(5))
			order = append(order, "child-end")
		})
		p.Wait(us(10))
		order = append(order, "parent-end")
	})
	e.RunAll()
	want := []string{"parent-start", "child-start", "child-end", "parent-end"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcYield(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Go(func(p *Proc) {
		order = append(order, 1)
		p.Yield()
		order = append(order, 3)
	})
	e.Schedule(0, func() { order = append(order, 2) })
	e.RunAll()
	// The proc starts (event 1), schedules a same-instant wake behind the
	// plain event, so 2 runs between 1 and 3.
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestUseConvenience(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var at Time
	e.Go(func(p *Proc) {
		r.Use(p, us(7))
		at = p.Now()
	})
	e.RunAll()
	if at != Time(us(7)) {
		t.Fatalf("at = %v", at)
	}
	if r.InUse() != 0 {
		t.Fatal("resource leaked")
	}
}
