// Package alloc implements CoRM's concurrent memory allocator (§2.1,
// §3.1.1): a two-level design where per-thread allocators serve object
// allocations from size-classed blocks and refill from a process-wide
// block allocator, which draws physical pages from the simulated memfd
// allocator and maps them into the shared address space.
//
// The package deliberately knows nothing about object IDs, headers'
// contents, compaction, or RDMA: it deals in blocks and slots. The core
// package layers CoRM's object format and compaction on top through the
// Config hooks.
package alloc

import (
	"fmt"
	"sort"
)

// DefaultClasses is the allocator's size-class list: 8-byte-aligned payload
// sizes chosen, as in the paper, to bound internal fragmentation from
// rounding up to the nearest class (~<=25% between neighbours).
var DefaultClasses = []int{
	8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512,
	768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384,
}

// Config parameterizes the allocator.
type Config struct {
	// BlockBytes is the block size handed out by the process-wide
	// allocator: a power-of-two multiple of the 4 KiB page (4 KiB in most
	// latency experiments, 1 MiB in the compaction studies, as in FaRM).
	BlockBytes int

	// Classes lists payload sizes. Defaults to DefaultClasses.
	Classes []int

	// HeaderBytes is the per-object header the store prepends inside each
	// slot (version, lock bits, object ID, home-block address).
	HeaderBytes int

	// CachelineAlign makes slot strides 64-byte aligned, required for the
	// FaRM-style per-cacheline version consistency of one-sided reads.
	// Without it strides are 8-byte aligned.
	CachelineAlign bool

	// StrideFunc, if set, overrides the stride computation entirely. The
	// store uses it for the versioned data layout, where each cacheline
	// loses one byte to the version tag.
	StrideFunc func(classSize int) int
}

// Cacheline is the modeled CPU cacheline size.
const Cacheline = 64

func (c Config) withDefaults() Config {
	if c.BlockBytes == 0 {
		c.BlockBytes = 4096
	}
	if len(c.Classes) == 0 {
		c.Classes = DefaultClasses
	}
	return c
}

func (c Config) validate() error {
	if c.BlockBytes < 4096 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("alloc: block size %d must be a power-of-two >= 4096", c.BlockBytes)
	}
	if !sort.IntsAreSorted(c.Classes) {
		return fmt.Errorf("alloc: size classes must be ascending")
	}
	for _, s := range c.Classes {
		if s <= 0 || s%8 != 0 {
			return fmt.Errorf("alloc: size class %d must be a positive multiple of 8", s)
		}
	}
	if c.HeaderBytes < 0 {
		return fmt.Errorf("alloc: negative header size")
	}
	return nil
}

// Stride is the slot stride for a payload class: header + payload rounded
// up to the alignment unit, unless StrideFunc overrides it.
func (c Config) Stride(classSize int) int {
	if c.StrideFunc != nil {
		return c.StrideFunc(classSize)
	}
	align := 8
	if c.CachelineAlign {
		align = Cacheline
	}
	n := c.HeaderBytes + classSize
	return (n + align - 1) / align * align
}

// SlotsPerBlock is the block capacity s for a payload class.
func (c Config) SlotsPerBlock(classSize int) int {
	return c.BlockBytes / c.Stride(classSize)
}

// ClassFor returns the index of the smallest class fitting size, or -1 if
// size exceeds the largest class.
func (c Config) ClassFor(size int) int {
	for i, s := range c.Classes {
		if s >= size {
			return i
		}
	}
	return -1
}
