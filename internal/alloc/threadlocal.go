package alloc

import (
	"fmt"
	"sync"
)

// ThreadLocal is a per-worker-thread allocator (§2.1.1). It keeps, per size
// class, a current block plus a list of partially used blocks, and refills
// from the process-wide allocator when everything is full.
//
// Conceptually the structure is thread-confined; a small mutex makes it
// safe for the store to route frees to the owning allocator from any
// goroutine (the messaging hop this represents is costed by the timing
// model, not by this lock).
type ThreadLocal struct {
	ID   int
	proc *ProcWide
	mu   sync.Mutex

	current []*Block   // per class: block served first
	partial [][]*Block // per class: other owned, non-full blocks
	full    [][]*Block // per class: owned full blocks

	// Refills counts trips to the process-wide allocator; the latency model
	// charges the extra block-registration cost (§4.1: +5 µs) per refill.
	Refills int64
}

// NewThreadLocal creates a thread-local allocator with the given id.
func NewThreadLocal(id int, proc *ProcWide) *ThreadLocal {
	n := len(proc.cfg.Classes)
	return &ThreadLocal{
		ID:      id,
		proc:    proc,
		current: make([]*Block, n),
		partial: make([][]*Block, n),
		full:    make([][]*Block, n),
	}
}

// Alloc claims a slot of the given class, refilling from the process-wide
// allocator if needed. refilled reports whether a new block was fetched.
func (t *ThreadLocal) Alloc(class int) (b *Block, slot int, refilled bool) {
	return t.AllocAnd(class, nil)
}

// AllocAnd claims a slot and, still inside the allocator's critical
// section, runs post to initialize it. A compaction leader collecting this
// thread's blocks serializes on the same lock, so it can never observe (or
// merge away) a slot whose object metadata is not yet written.
func (t *ThreadLocal) AllocAnd(class int, post func(b *Block, slot int, refilled bool) error) (b *Block, slot int, refilled bool) {
	t.mu.Lock()
	defer func() {
		if post != nil {
			if err := post(b, slot, refilled); err != nil {
				// Initialization failed: give the slot back before anyone
				// can see it.
				b.FreeSlot(slot)
				t.proc.CountAlloc(class, -1)
				b = nil
			}
		}
		t.mu.Unlock()
	}()
	if cur := t.current[class]; cur != nil {
		if s, ok := cur.AllocSlot(); ok {
			t.proc.CountAlloc(class, 1)
			return cur, s, false
		}
		t.full[class] = append(t.full[class], cur)
		t.current[class] = nil
	}
	// Promote a partial block if one exists.
	if list := t.partial[class]; len(list) > 0 {
		cur := list[len(list)-1]
		t.partial[class] = list[:len(list)-1]
		t.current[class] = cur
		if s, ok := cur.AllocSlot(); ok {
			t.proc.CountAlloc(class, 1)
			return cur, s, false
		}
		// Raced to full (shouldn't happen single-threaded, but be safe).
		t.full[class] = append(t.full[class], cur)
		t.current[class] = nil
	}
	cur := t.proc.NewBlock(class, t.ID)
	t.current[class] = cur
	t.Refills++
	s, ok := cur.AllocSlot()
	if !ok {
		panic("alloc: fresh block has no free slot")
	}
	t.proc.CountAlloc(class, 1)
	return cur, s, true
}

// ErrWrongOwner reports a free routed to a thread that no longer owns the
// block — compaction collection moves ownership concurrently, so callers
// re-read the owner and re-route.
var ErrWrongOwner = fmt.Errorf("alloc: block owned by another thread")

// Free releases a slot in a block owned by this thread. Empty non-current
// blocks are returned to the process-wide allocator, which is what the
// paper notes cannot happen while a single object remains — the root cause
// of fragmentation.
func (t *ThreadLocal) Free(b *Block, slot int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if owner := b.Owner(); owner != t.ID {
		return fmt.Errorf("%w: thread %d freeing slot in block owned by %d", ErrWrongOwner, t.ID, owner)
	}
	if err := b.FreeSlot(slot); err != nil {
		return err
	}
	t.proc.CountAlloc(b.Class, -1)
	if b.Empty() && t.current[b.Class] != b {
		// Only release blocks this thread actually holds: a block collected
		// by a compaction leader is in no thread's lists, and yanking it out
		// of the process-wide allocator mid-compaction would leave the
		// leader holding a dissolved block. The leader re-homes it (empty)
		// via AdoptBlock when compaction finishes.
		if t.removeOwned(b) {
			t.proc.ReleaseBlock(b, true)
		}
	} else if wasFull := t.inFull(b); wasFull {
		t.moveFullToPartial(b)
	}
	return nil
}

func (t *ThreadLocal) inFull(b *Block) bool {
	for _, x := range t.full[b.Class] {
		if x == b {
			return true
		}
	}
	return false
}

func (t *ThreadLocal) moveFullToPartial(b *Block) {
	list := t.full[b.Class]
	for i, x := range list {
		if x == b {
			list[i] = list[len(list)-1]
			t.full[b.Class] = list[:len(list)-1]
			t.partial[b.Class] = append(t.partial[b.Class], b)
			return
		}
	}
}

// removeOwned detaches b from whichever list holds it, reporting whether
// the thread held it at all.
func (t *ThreadLocal) removeOwned(b *Block) bool {
	c := b.Class
	if t.current[c] == b {
		t.current[c] = nil
		return true
	}
	for i, x := range t.partial[c] {
		if x == b {
			t.partial[c][i] = t.partial[c][len(t.partial[c])-1]
			t.partial[c] = t.partial[c][:len(t.partial[c])-1]
			return true
		}
	}
	for i, x := range t.full[c] {
		if x == b {
			t.full[c][i] = t.full[c][len(t.full[c])-1]
			t.full[c] = t.full[c][:len(t.full[c])-1]
			return true
		}
	}
	return false
}

// Owned returns every block currently owned by the thread for a class.
func (t *ThreadLocal) Owned(class int) []*Block {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ownedLocked(class)
}

func (t *ThreadLocal) ownedLocked(class int) []*Block {
	var out []*Block
	if t.current[class] != nil {
		out = append(out, t.current[class])
	}
	out = append(out, t.partial[class]...)
	out = append(out, t.full[class]...)
	return out
}

// CollectBelow detaches and returns owned blocks of the class with
// occupancy <= maxOcc — the collection stage of compaction (§3.1.4). The
// blocks' ownership moves to the requesting leader thread. Holding t.mu
// here is what makes collection safe against in-flight allocations: the
// store initializes new objects inside AllocAnd's critical section, so a
// collected block never carries a claimed-but-uninitialized slot.
func (t *ThreadLocal) CollectBelow(class int, maxOcc float64, leader int) []*Block {
	t.mu.Lock()
	defer t.mu.Unlock()
	var collected []*Block
	for _, b := range t.ownedLocked(class) {
		if b.Occupancy() <= maxOcc && !b.Empty() {
			t.removeOwned(b)
			b.SetOwner(leader)
			collected = append(collected, b)
		}
	}
	return collected
}

// AdoptBlock takes ownership of a block (the leader re-homing leftovers
// after compaction).
func (t *ThreadLocal) AdoptBlock(b *Block) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b.SetOwner(t.ID)
	if b.Full() {
		t.full[b.Class] = append(t.full[b.Class], b)
	} else {
		t.partial[b.Class] = append(t.partial[b.Class], b)
	}
}
