package alloc

import (
	"fmt"
	"sync"

	"corm/internal/mem"
)

// Block is one size-classed memory block: a contiguous virtual range backed
// by physical frames, divided into fixed-stride slots. A block is owned by
// at most one thread-local allocator at any time (the paper's ownership
// invariant that makes lockless compaction possible); the internal mutex
// only guards metadata against the auxiliary readers used in pointer
// correction.
type Block struct {
	Class  int // class index into Config.Classes
	Stride int // slot stride in bytes (header + payload, aligned)
	Slots  int // capacity s
	VAddr  uint64
	Pages  int

	mu     sync.Mutex
	bitmap []uint64
	nUsed  int
	owner  int // owning thread id, -1 when unowned (e.g. during compaction)
}

// newBlock builds the slot bookkeeping for a block at vaddr.
func newBlock(class, stride, slots int, vaddr uint64, pages int) *Block {
	return &Block{
		Class:  class,
		Stride: stride,
		Slots:  slots,
		VAddr:  vaddr,
		Pages:  pages,
		bitmap: make([]uint64, (slots+63)/64),
		owner:  -1,
	}
}

// Owner returns the owning thread, or -1.
func (b *Block) Owner() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.owner
}

// SetOwner transfers ownership (block collection during compaction).
func (b *Block) SetOwner(thread int) {
	b.mu.Lock()
	b.owner = thread
	b.mu.Unlock()
}

// AllocSlot claims a free slot and returns its index.
func (b *Block) AllocSlot() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.nUsed >= b.Slots {
		return 0, false
	}
	for w, word := range b.bitmap {
		if word == ^uint64(0) {
			continue
		}
		for bit := 0; bit < 64; bit++ {
			idx := w*64 + bit
			if idx >= b.Slots {
				break
			}
			if word&(1<<bit) == 0 {
				b.bitmap[w] |= 1 << bit
				b.nUsed++
				return idx, true
			}
		}
	}
	return 0, false
}

// AllocSlotAt claims a specific slot (compaction placing an object at its
// original offset). It fails if the slot is taken.
func (b *Block) AllocSlotAt(idx int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= b.Slots {
		return false
	}
	w, bit := idx/64, uint(idx%64)
	if b.bitmap[w]&(1<<bit) != 0 {
		return false
	}
	b.bitmap[w] |= 1 << bit
	b.nUsed++
	return true
}

// FreeSlot releases a slot.
func (b *Block) FreeSlot(idx int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= b.Slots {
		return fmt.Errorf("alloc: slot %d out of range [0,%d)", idx, b.Slots)
	}
	w, bit := idx/64, uint(idx%64)
	if b.bitmap[w]&(1<<bit) == 0 {
		return fmt.Errorf("alloc: double free of slot %d in block %#x", idx, b.VAddr)
	}
	b.bitmap[w] &^= 1 << bit
	b.nUsed--
	return nil
}

// SlotUsed reports whether a slot is allocated.
func (b *Block) SlotUsed(idx int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	w, bit := idx/64, uint(idx%64)
	return b.bitmap[w]&(1<<bit) != 0
}

// Used returns the number of allocated slots.
func (b *Block) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nUsed
}

// Empty reports whether no slots are allocated.
func (b *Block) Empty() bool { return b.Used() == 0 }

// Full reports whether every slot is allocated.
func (b *Block) Full() bool { return b.Used() == b.Slots }

// Occupancy is the used fraction of the block.
func (b *Block) Occupancy() float64 {
	return float64(b.Used()) / float64(b.Slots)
}

// UsedSlots returns the indices of allocated slots in ascending order.
func (b *Block) UsedSlots() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, 0, b.nUsed)
	for idx := 0; idx < b.Slots; idx++ {
		if b.bitmap[idx/64]&(1<<uint(idx%64)) != 0 {
			out = append(out, idx)
		}
	}
	return out
}

// SlotAddr returns the virtual address of slot idx.
func (b *Block) SlotAddr(idx int) uint64 {
	return b.VAddr + uint64(idx*b.Stride)
}

// SlotIndex maps a virtual address inside the block to its slot index and
// reports whether the address is slot-aligned.
func (b *Block) SlotIndex(vaddr uint64) (int, bool) {
	off := int(vaddr - b.VAddr)
	if off < 0 || off >= b.Slots*b.Stride {
		return 0, false
	}
	return off / b.Stride, off%b.Stride == 0
}

// FrameList resolves the block's current physical frames through the
// address space (needed when compaction remaps the source block onto the
// destination's frames).
func (b *Block) FrameList(space *mem.AddrSpace) []*mem.Frame {
	frames := make([]*mem.Frame, b.Pages)
	for i := 0; i < b.Pages; i++ {
		f, _, ok := space.Translate(b.VAddr + uint64(i*mem.PageSize))
		if !ok {
			panic(fmt.Sprintf("alloc: block page %d of %#x unmapped", i, b.VAddr))
		}
		frames[i] = f
	}
	return frames
}
