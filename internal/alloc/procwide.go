package alloc

import (
	"fmt"
	"sync"

	"corm/internal/mem"
)

// ProcWide is the process-wide block allocator: it turns physical frames
// into mapped, size-classed blocks and keeps the global registries used by
// compaction (blocks by class, block lookup by address) and by the
// fragmentation policy (granted vs used bytes per class).
type ProcWide struct {
	cfg   Config
	space *mem.AddrSpace

	mu       sync.Mutex
	byBase   map[uint64]*Block
	byClass  [][]*Block
	usedObjs []int64 // live objects per class
	granted  []int64 // blocks granted per class

	// OnNewBlock, if set, runs for every freshly mapped block before it is
	// returned (the store uses it to register memory with the RNIC).
	OnNewBlock func(*Block)
	// OnReleaseBlock runs before a block's memory is unmapped.
	OnReleaseBlock func(*Block)
}

// NewProcWide creates the process-wide allocator.
func NewProcWide(space *mem.AddrSpace, cfg Config) (*ProcWide, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ProcWide{
		cfg:      cfg,
		space:    space,
		byBase:   make(map[uint64]*Block),
		byClass:  make([][]*Block, len(cfg.Classes)),
		usedObjs: make([]int64, len(cfg.Classes)),
		granted:  make([]int64, len(cfg.Classes)),
	}, nil
}

// Config returns the allocator configuration.
func (p *ProcWide) Config() Config { return p.cfg }

// Space returns the backing address space.
func (p *ProcWide) Space() *mem.AddrSpace { return p.space }

// NewBlock maps a fresh block for the given class, owned by thread.
func (p *ProcWide) NewBlock(class, thread int) *Block {
	if class < 0 || class >= len(p.cfg.Classes) {
		panic(fmt.Sprintf("alloc: class index %d out of range", class))
	}
	pages := p.cfg.BlockBytes / mem.PageSize
	vaddr := p.space.ReserveBlock(pages)
	frames := p.space.Phys().Alloc(pages)
	p.space.Map(vaddr, frames)

	size := p.cfg.Classes[class]
	b := newBlock(class, p.cfg.Stride(size), p.cfg.SlotsPerBlock(size), vaddr, pages)
	b.SetOwner(thread)

	p.mu.Lock()
	p.byBase[vaddr] = b
	p.byClass[class] = append(p.byClass[class], b)
	p.granted[class]++
	p.mu.Unlock()

	if p.OnNewBlock != nil {
		p.OnNewBlock(b)
	}
	return b
}

// ReleaseBlock unmaps an empty block and retires its virtual address into
// the reuse pool. retireVaddr is false when the address must stay reserved
// because moved-out objects still reference it (§3.3); the store retires it
// later through RetireVaddr.
func (p *ProcWide) ReleaseBlock(b *Block, retireVaddr bool) {
	if !b.Empty() {
		panic(fmt.Sprintf("alloc: releasing non-empty block %#x", b.VAddr))
	}
	if p.OnReleaseBlock != nil {
		p.OnReleaseBlock(b)
	}
	p.mu.Lock()
	delete(p.byBase, b.VAddr)
	p.removeFromClassLocked(b)
	p.granted[b.Class]--
	p.mu.Unlock()

	p.space.Unmap(b.VAddr, b.Pages)
	if retireVaddr {
		p.space.RetireBlock(b.VAddr, b.Pages)
	}
}

// DropBlockKeepMapping removes a block from the registries without
// unmapping it: after compaction the source block's vaddr stays mapped
// (aliased to the destination frames) until its address can be reused.
func (p *ProcWide) DropBlockKeepMapping(b *Block) {
	p.mu.Lock()
	delete(p.byBase, b.VAddr)
	p.removeFromClassLocked(b)
	p.granted[b.Class]--
	p.mu.Unlock()
}

// RetireVaddr finishes the release of a previously dropped block address:
// unmaps the alias and returns the address to the reuse pool.
func (p *ProcWide) RetireVaddr(vaddr uint64, pages int) {
	p.space.Unmap(vaddr, pages)
	p.space.RetireBlock(vaddr, pages)
}

func (p *ProcWide) removeFromClassLocked(b *Block) {
	list := p.byClass[b.Class]
	for i, x := range list {
		if x == b {
			list[i] = list[len(list)-1]
			p.byClass[b.Class] = list[:len(list)-1]
			return
		}
	}
}

// BlockFor looks up the block containing vaddr. Blocks are block-size
// aligned, so the base is recovered by masking.
func (p *ProcWide) BlockFor(vaddr uint64) (*Block, bool) {
	base := vaddr &^ uint64(p.cfg.BlockBytes-1)
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.byBase[base]
	return b, ok
}

// BlocksOfClass snapshots the blocks of one class.
func (p *ProcWide) BlocksOfClass(class int) []*Block {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Block, len(p.byClass[class]))
	copy(out, p.byClass[class])
	return out
}

// Blocks reports the total number of live blocks.
func (p *ProcWide) Blocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byBase)
}

// CountAlloc records a live-object count change for fragmentation stats.
func (p *ProcWide) CountAlloc(class, delta int) {
	p.mu.Lock()
	p.usedObjs[class] += int64(delta)
	p.mu.Unlock()
}

// FragStats describes one class's fragmentation state (§3.1.3).
type FragStats struct {
	Class        int
	GrantedBytes int64 // block bytes granted by the OS
	UsedBytes    int64 // live payload+header bytes
	Ratio        float64
}

// Fragmentation computes the per-class granted/used ratio. A ratio of 1
// means perfectly packed; the compaction policy fires above a threshold.
func (p *ProcWide) Fragmentation(class int) FragStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	granted := p.granted[class] * int64(p.cfg.BlockBytes)
	used := p.usedObjs[class] * int64(p.cfg.Stride(p.cfg.Classes[class]))
	st := FragStats{Class: class, GrantedBytes: granted, UsedBytes: used}
	if used > 0 {
		st.Ratio = float64(granted) / float64(used)
	} else if granted > 0 {
		st.Ratio = float64(granted) // arbitrarily high: all waste
	} else {
		st.Ratio = 1
	}
	return st
}

// GrantedBytes is the total memory granted across classes — with the frame
// allocator's live count, the two views of active memory used in Figs 17-19.
func (p *ProcWide) GrantedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, g := range p.granted {
		total += g * int64(p.cfg.BlockBytes)
	}
	return total
}
