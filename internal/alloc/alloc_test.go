package alloc

import (
	"testing"
	"testing/quick"

	"corm/internal/mem"
)

func newProc(t *testing.T, cfg Config) *ProcWide {
	t.Helper()
	p, err := NewProcWide(mem.NewAddrSpace(mem.NewPhys(false)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	space := mem.NewAddrSpace(mem.NewPhys(false))
	bad := []Config{
		{BlockBytes: 1000},
		{BlockBytes: 8192, Classes: []int{16, 8}},
		{BlockBytes: 8192, Classes: []int{10}},
		{BlockBytes: 8192, Classes: []int{8}, HeaderBytes: -1},
		{BlockBytes: 12288}, // not a power of two
	}
	for i, cfg := range bad {
		if _, err := NewProcWide(space, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewProcWide(space, Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStrideAndCapacity(t *testing.T) {
	cfg := Config{BlockBytes: 4096, HeaderBytes: 16, CachelineAlign: true}.withDefaults()
	// 16B payload + 16B header -> 32 -> rounded to one cacheline.
	if s := cfg.Stride(16); s != 64 {
		t.Errorf("stride(16) = %d, want 64", s)
	}
	if n := cfg.SlotsPerBlock(16); n != 64 {
		t.Errorf("slots(16) = %d, want 64", n)
	}
	// 128B payload + 16B header = 144 -> 192 (3 cachelines).
	if s := cfg.Stride(128); s != 192 {
		t.Errorf("stride(128) = %d, want 192", s)
	}
	cfg8 := Config{BlockBytes: 4096, HeaderBytes: 8}.withDefaults()
	if s := cfg8.Stride(8); s != 16 {
		t.Errorf("8-aligned stride(8) = %d, want 16", s)
	}
	if n := cfg8.SlotsPerBlock(8); n != 256 {
		t.Errorf("slots = %d, want 256", n)
	}
}

func TestClassFor(t *testing.T) {
	cfg := Config{}.withDefaults()
	cases := map[int]int{1: 8, 8: 8, 9: 16, 33: 48, 250: 256, 16384: 16384}
	for size, wantClass := range cases {
		idx := cfg.ClassFor(size)
		if idx < 0 || cfg.Classes[idx] != wantClass {
			t.Errorf("ClassFor(%d) -> class %d, want %d", size, cfg.Classes[idx], wantClass)
		}
	}
	if cfg.ClassFor(20000) != -1 {
		t.Error("oversized object should map to no class")
	}
}

func TestBlockSlotLifecycle(t *testing.T) {
	b := newBlock(0, 64, 10, 0x10000, 1)
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		s, ok := b.AllocSlot()
		if !ok || seen[s] {
			t.Fatalf("alloc %d: ok=%v dup=%v", i, ok, seen[s])
		}
		seen[s] = true
	}
	if !b.Full() {
		t.Fatal("block should be full")
	}
	if _, ok := b.AllocSlot(); ok {
		t.Fatal("alloc from full block succeeded")
	}
	if err := b.FreeSlot(3); err != nil {
		t.Fatal(err)
	}
	if err := b.FreeSlot(3); err == nil {
		t.Fatal("double free not detected")
	}
	if b.Used() != 9 {
		t.Fatalf("used = %d", b.Used())
	}
	if !b.AllocSlotAt(3) {
		t.Fatal("AllocSlotAt on free slot failed")
	}
	if b.AllocSlotAt(3) {
		t.Fatal("AllocSlotAt on used slot succeeded")
	}
	if b.AllocSlotAt(10) {
		t.Fatal("AllocSlotAt out of range succeeded")
	}
}

func TestBlockSlotAddrRoundtrip(t *testing.T) {
	b := newBlock(0, 96, 42, 0x400000, 1)
	for _, idx := range []int{0, 1, 41} {
		addr := b.SlotAddr(idx)
		got, aligned := b.SlotIndex(addr)
		if !aligned || got != idx {
			t.Fatalf("SlotIndex(SlotAddr(%d)) = %d,%v", idx, got, aligned)
		}
	}
	// Interior address maps to the slot but is not aligned.
	got, aligned := b.SlotIndex(b.SlotAddr(5) + 10)
	if aligned || got != 5 {
		t.Fatalf("interior address: %d,%v", got, aligned)
	}
	if _, ok := b.SlotIndex(b.VAddr + uint64(42*96)); ok {
		t.Fatal("address past last slot accepted")
	}
}

func TestThreadLocalAllocFreeAndRelease(t *testing.T) {
	proc := newProc(t, Config{BlockBytes: 4096, HeaderBytes: 0})
	tl := NewThreadLocal(0, proc)
	class := proc.Config().ClassFor(64)

	type ref struct {
		b *Block
		s int
	}
	var refs []ref
	perBlock := proc.Config().SlotsPerBlock(64)
	for i := 0; i < perBlock+1; i++ { // force a second block
		b, s, _ := tl.Alloc(class)
		refs = append(refs, ref{b, s})
	}
	if tl.Refills != 2 {
		t.Fatalf("refills = %d, want 2", tl.Refills)
	}
	if proc.Blocks() != 2 {
		t.Fatalf("blocks = %d, want 2", proc.Blocks())
	}
	live := proc.Space().Phys().LivePages()
	if live != 2 {
		t.Fatalf("live pages = %d, want 2", live)
	}

	// Free everything in the first block: it is non-current, so it must be
	// released back (memory drops).
	for _, r := range refs[:perBlock] {
		if err := tl.Free(r.b, r.s); err != nil {
			t.Fatal(err)
		}
	}
	if proc.Blocks() != 1 {
		t.Fatalf("blocks after drain = %d, want 1", proc.Blocks())
	}
	if proc.Space().Phys().LivePages() != 1 {
		t.Fatal("empty block's pages not freed")
	}
	// Its vaddr is reusable.
	if proc.Space().ReusablePool(1) != 1 {
		t.Fatal("vaddr not retired")
	}
}

func TestFreeWrongOwnerRejected(t *testing.T) {
	proc := newProc(t, Config{BlockBytes: 4096})
	t0, t1 := NewThreadLocal(0, proc), NewThreadLocal(1, proc)
	class := proc.Config().ClassFor(32)
	b, s, _ := t0.Alloc(class)
	if err := t1.Free(b, s); err == nil {
		t.Fatal("cross-thread free accepted")
	}
	if err := t0.Free(b, s); err != nil {
		t.Fatal(err)
	}
}

func TestFullToPartialTransition(t *testing.T) {
	proc := newProc(t, Config{BlockBytes: 4096})
	tl := NewThreadLocal(0, proc)
	class := proc.Config().ClassFor(2048)
	per := proc.Config().SlotsPerBlock(2048) // 2 slots per 4K block
	var blocks []*Block
	var slots []int
	for i := 0; i < per*2; i++ {
		b, s, _ := tl.Alloc(class)
		blocks, slots = append(blocks, b), append(slots, s)
	}
	// First block is full; free one slot -> becomes partial and is used
	// again before a new refill.
	if err := tl.Free(blocks[0], slots[0]); err != nil {
		t.Fatal(err)
	}
	refillsBefore := tl.Refills
	b, _, refilled := tl.Alloc(class)
	_ = b
	if refilled || tl.Refills != refillsBefore {
		t.Fatal("allocator refilled instead of reusing the partial block")
	}
}

func TestFragmentationRatio(t *testing.T) {
	proc := newProc(t, Config{BlockBytes: 4096, HeaderBytes: 0})
	tl := NewThreadLocal(0, proc)
	class := proc.Config().ClassFor(64)
	per := proc.Config().SlotsPerBlock(64)

	var refs []struct {
		b *Block
		s int
	}
	for i := 0; i < per*4; i++ {
		b, s, _ := tl.Alloc(class)
		refs = append(refs, struct {
			b *Block
			s int
		}{b, s})
	}
	f := proc.Fragmentation(class)
	if f.Ratio < 0.99 || f.Ratio > 1.01 {
		t.Fatalf("packed ratio = %v, want ~1", f.Ratio)
	}
	// Free 3 of every 4 objects: blocks stay alive, ratio should be ~4.
	for i, r := range refs {
		if i%4 != 0 {
			if err := tl.Free(r.b, r.s); err != nil {
				t.Fatal(err)
			}
		}
	}
	f = proc.Fragmentation(class)
	if f.Ratio < 3.5 || f.Ratio > 4.5 {
		t.Fatalf("sparse ratio = %v, want ~4", f.Ratio)
	}
}

func TestCollectBelow(t *testing.T) {
	proc := newProc(t, Config{BlockBytes: 4096, HeaderBytes: 0})
	tl := NewThreadLocal(0, proc)
	class := proc.Config().ClassFor(64)
	per := proc.Config().SlotsPerBlock(64)

	var refs []struct {
		b *Block
		s int
	}
	for i := 0; i < per*3; i++ {
		b, s, _ := tl.Alloc(class)
		refs = append(refs, struct {
			b *Block
			s int
		}{b, s})
	}
	// Drain block 0 to 25%, block 1 to 75%, keep block 2 full.
	for i := 0; i < per; i++ {
		if i%4 != 0 {
			tl.Free(refs[i].b, refs[i].s)
		}
	}
	for i := per; i < 2*per; i++ {
		if i%4 == 0 {
			tl.Free(refs[i].b, refs[i].s)
		}
	}
	got := tl.CollectBelow(class, 0.5, 99)
	if len(got) != 1 {
		t.Fatalf("collected %d blocks, want 1", len(got))
	}
	if got[0].Owner() != 99 {
		t.Fatal("ownership not transferred to leader")
	}
	// The collected block is detached from the thread.
	for _, b := range tl.Owned(class) {
		if b == got[0] {
			t.Fatal("collected block still owned by thread")
		}
	}
}

func TestBlockFor(t *testing.T) {
	proc := newProc(t, Config{BlockBytes: 8192})
	tl := NewThreadLocal(0, proc)
	class := proc.Config().ClassFor(128)
	b, s, _ := tl.Alloc(class)
	got, ok := proc.BlockFor(b.SlotAddr(s) + 13)
	if !ok || got != b {
		t.Fatal("BlockFor failed to resolve interior address")
	}
	if _, ok := proc.BlockFor(0xdead0000); ok {
		t.Fatal("BlockFor resolved an unknown address")
	}
}

// Property: random alloc/free interleavings never corrupt slot accounting
// and fully freeing everything releases all physical memory.
func TestQuickAllocFreeInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		proc, err := NewProcWide(mem.NewAddrSpace(mem.NewPhys(false)),
			Config{BlockBytes: 4096, HeaderBytes: 8})
		if err != nil {
			return false
		}
		tl := NewThreadLocal(0, proc)
		type ref struct {
			b *Block
			s int
		}
		var live []ref
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				class := int(op) % 5 // classes 8..48
				b, s, _ := tl.Alloc(class)
				if !b.SlotUsed(s) {
					return false
				}
				live = append(live, ref{b, s})
			} else {
				i := int(op/3) % len(live)
				r := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := tl.Free(r.b, r.s); err != nil {
					return false
				}
			}
		}
		// Sum of per-block used must match live refs.
		total := 0
		for _, b := range func() []*Block {
			var all []*Block
			for c := 0; c < 5; c++ {
				all = append(all, proc.BlocksOfClass(c)...)
			}
			return all
		}() {
			total += b.Used()
		}
		if total != len(live) {
			return false
		}
		for _, r := range live {
			if err := tl.Free(r.b, r.s); err != nil {
				return false
			}
		}
		// Only current blocks may remain; they are empty.
		for c := 0; c < 5; c++ {
			for _, b := range proc.BlocksOfClass(c) {
				if !b.Empty() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
