package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-linear (HdrHistogram-style). Values
// 0..15 get exact buckets; above that, each power-of-two octave is split
// into 16 linear sub-buckets, so the relative quantization error is at
// most 1/16 (6.25%) across the whole int64 range. That is plenty for
// latency tails (a 100 us p99 is resolved to ~6 us) while keeping the
// bucket array small enough to embed: 960 * 8 bytes per histogram.
// int64 values have at most 63 significant bits, so the top index is
// 58*16 + 31 = 959 (bucketHi(959) == MaxInt64 exactly).
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histBuckets  = (63-histSubBits)*histSubCount + histSubCount
)

// bucketIdx maps a value to its bucket. Monotone: v1 <= v2 implies
// bucketIdx(v1) <= bucketIdx(v2).
func bucketIdx(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := uint(bits.Len64(u)) - histSubBits - 1
	return int(exp)*histSubCount + int(u>>exp)
}

// bucketHi returns the largest value mapping into bucket idx — the
// representative quantile value.
func bucketHi(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := uint(idx/histSubCount - 1)
	m := uint64(idx) - uint64(exp)*histSubCount
	hi := (m+1)<<exp - 1
	if hi > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(hi)
}

// Histogram is a lock-free log-linear histogram of int64 observations
// (latencies in nanoseconds, batch sizes, fan-out widths). The zero value
// is ready to use. Observe is two atomic adds plus a rare CAS for the
// running max; it never allocates and never takes a lock.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Record observes a duration in nanoseconds.
func (h *Histogram) Record(d time.Duration) { h.Observe(int64(d)) }

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is a point-in-time copy of a histogram. Count is derived
// from the same bucket loads the quantiles use, so a snapshot is always
// self-consistent: quantiles are monotone in q, bounded by Max, and Count
// never decreases across consecutive snapshots of a live histogram.
type HistSnapshot struct {
	Count int64
	Sum   int64
	Max   int64

	buckets [histBuckets]int64
}

// Snapshot captures the histogram. Safe to call concurrently with
// Observe.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := new(HistSnapshot)
	h.SnapshotInto(s)
	return s
}

// SnapshotInto captures the histogram into s, reusing its storage (the
// allocation-free variant for periodic scrapers).
func (h *Histogram) SnapshotInto(s *HistSnapshot) {
	var count int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		count += c
	}
	s.Count = count
	s.Sum = h.sum.Load()
	// The atomic max is updated after the bucket add in Observe, so a
	// concurrent snapshot can see a bucket entry before the max. Quantile
	// clamps to this Max, which keeps quantile <= Max unconditionally while
	// reporting the exact (not bucket-rounded) maximum.
	s.Max = h.max.Load()
}

// Quantile returns the value at quantile q in [0, 1], to bucket
// resolution (<= 6.25% relative error). Quantile is monotone in q and
// never exceeds Max.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range s.buckets {
		cum += s.buckets[i]
		if cum >= target {
			hi := bucketHi(i)
			if hi > s.Max {
				return s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
// Sum and Count are loaded independently, so under concurrent writes the
// mean is approximate.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
