package metrics

import (
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Idempotent re-registration returns the same metric.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestBucketMapping(t *testing.T) {
	// Exact buckets below 16.
	for v := int64(0); v < 16; v++ {
		if got := bucketIdx(v); got != int(v) {
			t.Fatalf("bucketIdx(%d) = %d, want %d", v, got, v)
		}
		if got := bucketHi(int(v)); got != v {
			t.Fatalf("bucketHi(%d) = %d, want %d", v, got, v)
		}
	}
	// Every value maps into a bucket whose bounds contain it, and the
	// mapping is monotone.
	prev := -1
	for _, v := range []int64{16, 17, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		if hi := bucketHi(idx); v > hi {
			t.Fatalf("value %d above its bucket bound %d (idx %d)", v, hi, idx)
		}
		if idx > 0 {
			if lo := bucketHi(idx - 1); v <= lo {
				t.Fatalf("value %d below previous bucket bound %d (idx %d)", v, lo, idx)
			}
		}
	}
	if got := bucketIdx(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("MaxInt64 maps to %d, want last bucket %d", got, histBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	// Log-linear buckets guarantee <= 1/16 relative error above the
	// quantile's true value.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {1, 1000}} {
		got := s.Quantile(tc.q)
		if got < tc.want || float64(got) > float64(tc.want)*(1+1.0/16)+1 {
			t.Fatalf("q%.2f = %d, want within 6.25%% above %d", tc.q, got, tc.want)
		}
	}
	if s.Quantile(0.5) > s.Quantile(0.95) || s.Quantile(0.95) > s.Quantile(0.99) || s.Quantile(0.99) > s.Max {
		t.Fatal("quantiles not monotone")
	}
	if mean := s.Mean(); mean < 495 || mean > 506 {
		t.Fatalf("mean = %f, want ~500.5", mean)
	}
	h.Observe(-5) // clamps to 0
	if h.Snapshot().Quantile(0) != 0 {
		t.Fatal("negative observation should clamp to bucket 0")
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(100)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("reset histogram not empty: %+v", s)
	}
}

func TestSplitAndWithLabels(t *testing.T) {
	base, labels := splitName(`corm_rpc_latency_ns{op="read"}`)
	if base != "corm_rpc_latency_ns" || labels != `op="read"` {
		t.Fatalf("splitName = (%q, %q)", base, labels)
	}
	if b, l := splitName("plain"); b != "plain" || l != "" {
		t.Fatalf("splitName(plain) = (%q, %q)", b, l)
	}
	if got := withLabels("m", `a="1"`, `q="2"`); got != `m{a="1",q="2"}` {
		t.Fatalf("withLabels = %q", got)
	}
	if got := withLabels("m", "", ""); got != "m" {
		t.Fatalf("withLabels bare = %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("corm_reads_total", "total reads").Add(7)
	r.Gauge("corm_blocks_live", "live blocks").Set(3)
	h := r.Histogram(`corm_rpc_latency_ns{op="read"}`, "rpc latency")
	h.Observe(100)
	h.Observe(200)
	r.Histogram(`corm_rpc_latency_ns{op="write"}`, "rpc latency").Observe(50)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE corm_reads_total counter",
		"corm_reads_total 7",
		"# TYPE corm_blocks_live gauge",
		"corm_blocks_live 3",
		"# TYPE corm_rpc_latency_ns summary",
		`corm_rpc_latency_ns{op="read",quantile="0.5"}`,
		`corm_rpc_latency_ns{op="read",quantile="1"} 200`,
		`corm_rpc_latency_ns_count{op="read"} 2`,
		`corm_rpc_latency_ns_sum{op="read"} 300`,
		`corm_rpc_latency_ns{op="write",quantile="1"} 50`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE appear once per base name even with two labeled series.
	if strings.Count(out, "# TYPE corm_rpc_latency_ns summary") != 1 {
		t.Fatalf("TYPE header repeated:\n%s", out)
	}
}

func TestDumpTextSkipsZeroes(t *testing.T) {
	r := New()
	r.Counter("zero_total", "")
	r.Counter("hot_total", "").Add(5)
	r.Histogram("lat_ns", "").Observe(123)
	var sb strings.Builder
	r.DumpText(&sb)
	out := sb.String()
	if strings.Contains(out, "zero_total") {
		t.Fatalf("zero counter should be skipped:\n%s", out)
	}
	if !strings.Contains(out, "hot_total") || !strings.Contains(out, "lat_ns") {
		t.Fatalf("non-zero metrics missing:\n%s", out)
	}
	empty := New()
	sb.Reset()
	empty.DumpText(&sb)
	if !strings.Contains(sb.String(), "no metrics recorded") {
		t.Fatalf("empty dump = %q", sb.String())
	}
}

func TestSpanAndTraceRing(t *testing.T) {
	var h Histogram
	EnableTracing(true)
	defer EnableTracing(false)
	sp := StartSpan("unit.test.span", &h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	if h.Snapshot().Count != 1 {
		t.Fatal("span did not record into histogram")
	}
	events := RecentTraces()
	found := false
	for _, e := range events {
		if e.Name == "unit.test.span" && e.Dur == d {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace ring missing span event (have %d events)", len(events))
	}
}

func TestTraceRingWraps(t *testing.T) {
	EnableTracing(true)
	defer EnableTracing(false)
	for i := 0; i < traceRingSize+10; i++ {
		StartSpan("wrap.test", nil).End()
	}
	events := RecentTraces()
	if len(events) != traceRingSize {
		t.Fatalf("ring holds %d events, want %d", len(events), traceRingSize)
	}
	// Oldest-first ordering: timestamps never decrease.
	for i := 1; i < len(events); i++ {
		if events[i].Start.Before(events[i-1].Start) {
			t.Fatal("trace events not oldest-first")
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("corm_http_test_total", "").Add(9)
	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "corm_http_test_total 9") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
	if code, _ := get("/debug/traces"); code != 200 {
		t.Fatalf("/debug/traces: code=%d", code)
	}
}
