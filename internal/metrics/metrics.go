// Package metrics is CoRM's zero-dependency observability toolkit: a
// lock-free registry of counters, gauges, and log-linear latency
// histograms, plus lightweight trace spans for request lifecycles.
//
// The paper's evaluation (Figs 7-17) is entirely about latency and
// throughput tails — of one-sided reads, RPCs, and compaction — so the
// system carries its own measurement plane the way FaRM-style systems do.
// Design constraints, in order:
//
//  1. The fast path must be free: a counter increment is one atomic add
//     (no locks, no maps, no allocation), a histogram observation is two
//     atomic adds plus a bit-twiddle. Instrumented hot paths (per-RPC, per
//     frame flush) must not notice the metrics exist.
//  2. Snapshots are torn-free in the invariant sense: readers never see a
//     quantile outside the observed range, counts are monotone across
//     consecutive snapshots, and p50 <= p95 <= p99 <= Max always holds.
//  3. Zero dependencies: stdlib only, so every internal package can import
//     this one without cycles or new modules.
//
// Metrics live in a Registry; the process-global Default() registry is
// what the subsystem packages (transport, rpc, core, client, cluster)
// register into and what the HTTP endpoint (http.go) exposes as
// Prometheus text, expvar JSON, and pprof.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; Inc/Add are single atomic adds.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous value that may go up and down (live blocks,
// open breakers). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Kind discriminates registered metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// entry is one registered metric.
type entry struct {
	name string // full name, possibly with a {label="..."} suffix
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name of the same kind returns the existing metric (so package-
// level metric sets can be built lazily and tests can share the process
// registry); a kind mismatch panics, as it is a programming error.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*entry
	order  []*entry
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

var defaultRegistry = New()

// Default returns the process-global registry every CoRM subsystem
// registers into.
func Default() *Registry { return defaultRegistry }

// lookupOrAdd returns the entry for name, creating it via mk on first use.
func (r *Registry) lookupOrAdd(name, help string, kind Kind, mk func(*entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	mk(e)
	r.byName[name] = e
	r.order = append(r.order, e)
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookupOrAdd(name, help, KindCounter, func(e *entry) { e.counter = &Counter{} }).counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookupOrAdd(name, help, KindGauge, func(e *entry) { e.gauge = &Gauge{} }).gauge
}

// Histogram registers (or returns the existing) histogram under name.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.lookupOrAdd(name, help, KindHistogram, func(e *entry) { e.hist = &Histogram{} }).hist
}

// Reset zeroes every registered metric — corm-bench uses it so each
// experiment's summary reflects only that run.
func (r *Registry) Reset() {
	r.mu.Lock()
	entries := append([]*entry(nil), r.order...)
	r.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case KindCounter:
			e.counter.reset()
		case KindGauge:
			e.gauge.reset()
		case KindHistogram:
			e.hist.Reset()
		}
	}
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name  string
	Help  string
	Kind  Kind
	Value int64         // counters and gauges
	Hist  *HistSnapshot // histograms
}

// Snapshot captures every registered metric, in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.order...)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		s := MetricSnapshot{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = e.counter.Value()
		case KindGauge:
			s.Value = e.gauge.Value()
		case KindHistogram:
			s.Hist = e.hist.Snapshot()
		}
		out = append(out, s)
	}
	return out
}

// splitName separates a metric name into its base and an optional label
// set: "corm_rpc_latency_ns{op=\"read\"}" -> ("corm_rpc_latency_ns",
// `op="read"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabels renders base{existing,extra}.
func withLabels(base, existing, extra string) string {
	switch {
	case existing == "" && extra == "":
		return base
	case existing == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + existing + "}"
	}
	return base + "{" + existing + "," + extra + "}"
}

// --- Spans: lightweight request-lifecycle tracing ---

// Span measures one request lifecycle: StartSpan stamps the wall clock,
// End records the elapsed time into the span's histogram and — when
// tracing is enabled — appends a trace event to the in-memory ring.
// Span is a value type; starting and ending one allocates nothing.
type Span struct {
	name  string
	h     *Histogram
	start time.Time
}

// StartSpan begins a span recording into h (which may be nil for a pure
// trace span).
func StartSpan(name string, h *Histogram) Span {
	return Span{name: name, h: h, start: time.Now()}
}

// End finishes the span, returning its duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Record(d)
	}
	if traceOn.Load() {
		traceRing.add(TraceEvent{Name: s.name, Start: s.start, Dur: d})
	}
	return d
}

// TraceEvent is one completed span in the trace ring.
type TraceEvent struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// traceRingSize bounds the in-memory trace buffer.
const traceRingSize = 256

type spanRing struct {
	mu     sync.Mutex
	events [traceRingSize]TraceEvent
	next   int
	filled bool
}

func (r *spanRing) add(e TraceEvent) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next++
	if r.next == traceRingSize {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

func (r *spanRing) recent() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = traceRingSize
	}
	out := make([]TraceEvent, 0, n)
	if r.filled {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	return out
}

var (
	traceOn   atomic.Bool
	traceRing spanRing
)

// EnableTracing toggles span collection into the trace ring. Disabled by
// default so spans cost only the histogram observation.
func EnableTracing(on bool) { traceOn.Store(on) }

// RecentTraces returns the buffered span events, oldest first.
func RecentTraces() []TraceEvent { return traceRing.recent() }

// SortedNames returns the registered metric names, sorted — a test and
// debugging convenience.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
