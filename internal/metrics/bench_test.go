package metrics

import (
	"testing"
)

// The acceptance bar: counter increments <= 25 ns/op, 0 allocs/op.
// Run: go test -bench . -benchmem ./internal/metrics

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.Observe(v & 0xfffff)
		}
	})
}

func BenchmarkSpan(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("bench.span", &h).End()
	}
}

func BenchmarkSnapshotInto(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 100000; i++ {
		h.Observe(i)
	}
	s := new(HistSnapshot)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SnapshotInto(s)
	}
}
