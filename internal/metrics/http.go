package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (v0.0.4). Counters and gauges emit one sample; histograms emit a
// summary (quantile series plus _sum and _count), with quantile="1" being
// the running max. Metric names may carry a baked-in label set
// ("corm_rpc_latency_ns{op=\"read\"}"): the base name gets one HELP/TYPE
// header and each labeled variant its own series, which is how the
// registry expresses per-opcode families without a label API on the hot
// path.
func (r *Registry) WritePrometheus(w io.Writer) {
	snaps := r.Snapshot()
	typed := make(map[string]bool, len(snaps))
	header := func(s *MetricSnapshot, base, promType string) {
		if typed[base] {
			return
		}
		typed[base] = true
		if s.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, s.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, promType)
	}
	for i := range snaps {
		s := &snaps[i]
		base, labels := splitName(s.Name)
		switch s.Kind {
		case KindCounter:
			header(s, base, "counter")
			fmt.Fprintf(w, "%s %d\n", withLabels(base, labels, ""), s.Value)
		case KindGauge:
			header(s, base, "gauge")
			fmt.Fprintf(w, "%s %d\n", withLabels(base, labels, ""), s.Value)
		case KindHistogram:
			header(s, base, "summary")
			h := s.Hist
			for _, q := range [...]struct {
				label string
				q     float64
			}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
				fmt.Fprintf(w, "%s %d\n", withLabels(base, labels, `quantile="`+q.label+`"`), h.Quantile(q.q))
			}
			fmt.Fprintf(w, "%s %d\n", withLabels(base, labels, `quantile="1"`), h.Max)
			fmt.Fprintf(w, "%s %d\n", withLabels(base+"_sum", labels, ""), h.Sum)
			fmt.Fprintf(w, "%s %d\n", withLabels(base+"_count", labels, ""), h.Count)
		}
	}
}

// DumpText renders a compact human-readable summary — corm-bench prints
// this after each experiment. Zero-valued counters/gauges and empty
// histograms are skipped so the dump stays small.
func (r *Registry) DumpText(w io.Writer) {
	snaps := r.Snapshot()
	sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
	var any bool
	for i := range snaps {
		s := &snaps[i]
		switch s.Kind {
		case KindCounter, KindGauge:
			if s.Value == 0 {
				continue
			}
			any = true
			fmt.Fprintf(w, "%-56s %12d\n", s.Name, s.Value)
		case KindHistogram:
			h := s.Hist
			if h.Count == 0 {
				continue
			}
			any = true
			fmt.Fprintf(w, "%-56s n=%-9d p50=%-9d p95=%-9d p99=%-9d max=%-9d mean=%.0f\n",
				s.Name, h.Count, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max, h.Mean())
		}
	}
	if !any {
		fmt.Fprintln(w, "(no metrics recorded)")
	}
}

// Vars renders the registry as a JSON-friendly map for /debug/vars.
func (r *Registry) Vars() any {
	out := make(map[string]any)
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case KindCounter, KindGauge:
			out[s.Name] = s.Value
		case KindHistogram:
			out[s.Name] = map[string]any{
				"count": s.Hist.Count,
				"sum":   s.Hist.Sum,
				"p50":   s.Hist.Quantile(0.5),
				"p95":   s.Hist.Quantile(0.95),
				"p99":   s.Hist.Quantile(0.99),
				"max":   s.Hist.Max,
			}
		}
	}
	return out
}

// expvarOnce guards the one-time expvar publication of the default
// registry (expvar panics on duplicate names).
var expvarOnce sync.Once

// Handler returns the observability mux:
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar JSON (includes the registry under "corm")
//	/debug/pprof/*  pprof profiles
//	/debug/traces   recent span trace events (text)
func Handler(r *Registry) http.Handler {
	if r == defaultRegistry {
		expvarOnce.Do(func() {
			expvar.Publish("corm", expvar.Func(r.Vars))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range RecentTraces() {
			fmt.Fprintf(w, "%s %s %v\n", e.Start.Format(time.RFC3339Nano), e.Name, e.Dur)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "corm metrics endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n  /debug/traces\n")
	})
	return mux
}

// Serve starts the observability HTTP server on addr (e.g. ":9100"),
// returning the bound address and a stop function.
func Serve(addr string, r *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
