package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHotPathZeroAllocs guards the core acceptance criterion: the
// instrumented fast paths must not allocate. Run with -race too — the
// allocation counts are identical.
func TestHotPathZeroAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(3) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v/op", n)
	}
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { v++; h.Observe(v) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { StartSpan("alloc.test", &h).End() }); n != 0 {
		t.Fatalf("Span start/end allocates %v/op (tracing off)", n)
	}
	s := new(HistSnapshot)
	if n := testing.AllocsPerRun(100, func() { h.SnapshotInto(s) }); n != 0 {
		t.Fatalf("SnapshotInto allocates %v/op", n)
	}
}

// TestConcurrentHammer runs 16 writers against one counter, one gauge,
// and one histogram while a reader continuously snapshots, checking the
// torn-free invariants on every snapshot:
//
//	p50 <= p95 <= p99 <= Max
//	Count is monotone across consecutive snapshots
//	Count never exceeds the number of observations issued so far
//
// Meant to be run under -race as well (the CI test step does).
func TestConcurrentHammer(t *testing.T) {
	const (
		writers = 16
		perG    = 20000
	)
	r := New()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_ns", "")

	var issued atomic.Int64 // observations fully issued (incremented after Observe)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-start
			v := seed
			for i := 0; i < perG; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				c.Inc()
				g.Add(1)
				h.Observe(v % 1_000_000)
				issued.Add(1)
			}
		}(int64(w + 1))
	}

	done := make(chan struct{})
	var readerErr error
	go func() {
		defer close(done)
		var prevCount int64
		s := new(HistSnapshot)
		for i := 0; ; i++ {
			select {
			case <-start:
			default:
				time.Sleep(time.Microsecond)
				continue
			}
			h.SnapshotInto(s)
			p50, p95, p99 := s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)
			if p50 > p95 || p95 > p99 || p99 > s.Max {
				readerErr = errorf("torn snapshot: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, s.Max)
				return
			}
			if s.Count < prevCount {
				readerErr = errorf("count went backwards: %d -> %d", prevCount, s.Count)
				return
			}
			prevCount = s.Count
			if s.Count >= writers*perG {
				return
			}
			if cv := c.Value(); cv > int64(writers*perG) {
				readerErr = errorf("counter overshoot: %d", cv)
				return
			}
		}
	}()

	close(start)
	wg.Wait()
	<-done
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if got := c.Value(); got != writers*perG {
		t.Fatalf("final counter = %d, want %d", got, writers*perG)
	}
	if got := g.Value(); got != writers*perG {
		t.Fatalf("final gauge = %d, want %d", got, writers*perG)
	}
	fs := h.Snapshot()
	if fs.Count != writers*perG {
		t.Fatalf("final histogram count = %d, want %d", fs.Count, writers*perG)
	}
	if issued.Load() != writers*perG {
		t.Fatalf("issued = %d", issued.Load())
	}
}

// TestSnapshotCountNeverExceedsIssued interleaves observation with
// snapshotting from many goroutines and asserts a snapshot never reports
// more observations than have been started.
func TestSnapshotCountNeverExceedsIssued(t *testing.T) {
	var h Histogram
	var started atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				started.Add(1)
				h.Observe(42)
			}
		}()
	}
	s := new(HistSnapshot)
	for i := 0; i < 5000; i++ {
		// Load the upper bound AFTER the snapshot: every bucket entry the
		// snapshot saw had its started.Add complete beforehand.
		h.SnapshotInto(s)
		hi := started.Load()
		if s.Count > hi {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot count %d exceeds started %d", s.Count, hi)
		}
	}
	close(stop)
	wg.Wait()
}

func errorf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
