package timing

import (
	"testing"
	"time"
)

func TestPaperCalibration(t *testing.T) {
	cx3, cx5 := ConnectX3(), ConnectX5()

	// §4.1: "round trip latencies of RDMA requests are under 4 us".
	for _, size := range []int{8, 64, 256, 1024, 2048} {
		if rtt := cx3.ReadRTT(size); rtt >= 4*time.Microsecond {
			t.Errorf("ReadRTT(%d) = %v, want < 4us", size, rtt)
		}
	}
	if cx3.ReadRTT(8) < 1500*time.Nanosecond || cx3.ReadRTT(8) > 2000*time.Nanosecond {
		t.Errorf("small read RTT = %v, want ~1.7us", cx3.ReadRTT(8))
	}

	// Fig 8: mmap 1.9-2.3us, rereg (CX-5) 8.5-9.6us, ODP miss 62-65us,
	// advise 4.5-4.6us.
	if cx5.Mmap < 1900*time.Nanosecond || cx5.Mmap > 2300*time.Nanosecond {
		t.Errorf("mmap = %v, want ~2.1us", cx5.Mmap)
	}
	if r := cx5.Rereg(1); r < 8500*time.Nanosecond || r > 9600*time.Nanosecond {
		t.Errorf("CX-5 rereg(1 page) = %v, want 8.5-9.6us", r)
	}
	if cx5.ODPMiss < 62*time.Microsecond || cx5.ODPMiss > 65*time.Microsecond {
		t.Errorf("ODP miss = %v, want 62-65us", cx5.ODPMiss)
	}
	if cx5.AdviseMR < 4500*time.Nanosecond || cx5.AdviseMR > 4600*time.Nanosecond {
		t.Errorf("advise = %v, want 4.5-4.6us", cx5.AdviseMR)
	}

	// Fig 15: CX-3 rereg of one page ~70us dominates the ~100us block
	// compaction; 256-page block ~12ms.
	if r := cx3.Rereg(1); r < 60*time.Microsecond || r > 110*time.Microsecond {
		t.Errorf("CX-3 rereg(1) = %v, want ~70-100us", r)
	}
	if r := cx3.Rereg(256); r < 9*time.Millisecond || r > 15*time.Millisecond {
		t.Errorf("CX-3 rereg(256) = %v, want ~12ms", r)
	}
	if !cx5.HasODP || cx3.HasODP {
		t.Error("ODP support flags wrong: only ConnectX-5 has ODP")
	}
}

func TestCollectionLatency(t *testing.T) {
	intel, amd := IntelXeon(), AMDEpyc()

	// Fig 15 left: Intel ~10us at 2 threads, ~31us at 16; AMD ~2us at 2
	// threads and similar to Intel at 16.
	if c := intel.Collection(2); c < 8*time.Microsecond || c > 12*time.Microsecond {
		t.Errorf("Intel Collection(2) = %v, want ~10us", c)
	}
	if c := intel.Collection(16); c < 28*time.Microsecond || c > 34*time.Microsecond {
		t.Errorf("Intel Collection(16) = %v, want ~31us", c)
	}
	if c := amd.Collection(2); c < 1*time.Microsecond || c > 4*time.Microsecond {
		t.Errorf("AMD Collection(2) = %v, want ~2us", c)
	}
	if intel.Collection(2) <= amd.Collection(2)*3 {
		t.Errorf("Intel should be ~5x slower than AMD at 2 threads: %v vs %v",
			intel.Collection(2), amd.Collection(2))
	}
	if amd.Collection(1) != 0 || intel.Collection(0) != 0 {
		t.Error("collection with <=1 thread should be free")
	}
}

func TestRTTMonotonicity(t *testing.T) {
	n := ConnectX3()
	prev := Duration(0)
	for _, size := range []int{8, 16, 64, 512, 2048, 8192} {
		rtt := n.ReadRTT(size)
		if rtt < prev {
			t.Fatalf("ReadRTT not monotonic at %d", size)
		}
		prev = rtt
		if n.RPCRTT(size) <= rtt-n.ReadBase+n.SendRecvBase-1 {
			t.Fatalf("RPC RTT should track wire size at %d", size)
		}
	}
}

func TestRPCSlowerThanRDMA(t *testing.T) {
	m := Default()
	// §4.1/Fig 9: one-sided reads beat Send/Recv RPC at every size.
	for _, size := range []int{8, 256, 2048} {
		if m.NIC.ReadRTT(size) >= m.NIC.RPCRTT(size) {
			t.Errorf("RDMA read should be faster than RPC at %d bytes", size)
		}
	}
	// §4.1: IPoIB TCP is ~17us, much slower than both.
	if m.TCPBase < 4*m.NIC.ReadRTT(8) {
		t.Error("TCP baseline should be several times slower than RDMA")
	}
}

func TestVersionCheckScalesWithCachelines(t *testing.T) {
	c := IntelXeon()
	if c.VersionCheck(8) != c.VersionCheck(64) {
		t.Error("objects within one cacheline should cost one check")
	}
	if c.VersionCheck(2048) != 32*c.VersionPerLine {
		t.Errorf("2KiB object = 32 cachelines, got %v", c.VersionCheck(2048))
	}
	// Fig 11: consistency check costs <= ~2% of a large read's RTT... it is
	// visible but small.
	n := ConnectX3()
	if float64(c.VersionCheck(2048)) > 0.25*float64(n.ReadRTT(2048)) {
		t.Errorf("version check too expensive: %v vs RTT %v",
			c.VersionCheck(2048), n.ReadRTT(2048))
	}
}

func TestWorkerCapacityCalibration(t *testing.T) {
	c := IntelXeon()
	// Fig 12: 8 workers saturate at ~700 Kreq/s -> per-request busy time
	// ~11.4us split between Handle (latency-visible) and Post.
	busy := c.WorkerHandle + c.WorkerPost
	capacity := 8.0 / busy.Seconds()
	if capacity < 600e3 || capacity > 800e3 {
		t.Errorf("8-worker RPC capacity = %.0f req/s, want ~700K", capacity)
	}
	// Fig 9: single-request RPC latency stays ~3-4us, so Handle must be
	// small compared to Post.
	if c.WorkerHandle > 2*time.Microsecond {
		t.Errorf("WorkerHandle = %v too large for Fig 9 latencies", c.WorkerHandle)
	}
}

func TestEngineCapacityCalibration(t *testing.T) {
	n := ConnectX3()
	// Fig 12: one-sided reads reach ~2.2 Mreq/s under zipf (hot MTT cache).
	peak := 1.0 / n.EngineTime(32).Seconds()
	if peak < 1.8e6 || peak > 2.6e6 {
		t.Errorf("engine peak = %.0f req/s, want ~2.2M", peak)
	}
	// Uniform access misses the MTT cache; plateau drops to ~1.75M.
	miss := 1.0 / (n.EngineTime(32) + n.MTTMissEngine).Seconds()
	if miss < 1.4e6 || miss > 1.9e6 {
		t.Errorf("engine miss-rate peak = %.0f req/s, want ~1.75M", miss)
	}
}

func TestModelWith(t *testing.T) {
	m := Default().WithNIC(ConnectX5()).WithCPU(AMDEpyc())
	if m.NIC.Name != "ConnectX-5" || m.CPU.Name != "AMD EPYC 7742" {
		t.Fatalf("WithNIC/WithCPU did not apply: %+v", m)
	}
	if Default().NIC.Name != "ConnectX-3" {
		t.Fatal("Default must remain ConnectX-3 (value semantics)")
	}
}
