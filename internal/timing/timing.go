// Package timing defines the latency models used by the CoRM simulations.
//
// The reproduction has no InfiniBand hardware, so every component cost is a
// model constant calibrated against the values the paper reports directly
// (Fig 8, Fig 9, Fig 15, §4.1–§4.3): RDMA read RTT ≈1.7 µs, RPC RTT ≈3 µs,
// mmap ≈2.1 µs, ibv_rereg_mr ≈9 µs (ConnectX-5) / ≈70 µs (ConnectX-3), ODP
// miss ≈63 µs, ibv_advise_mr ≈4.5 µs, IPoIB TCP RTT 17 µs, thread-collection
// 10 µs@2/31 µs@16 threads on Intel and 2 µs@2 on AMD. Queueing behaviour
// (saturation, plateaus, crossovers) emerges from the discrete-event
// simulation; only these point costs are taken from the paper.
package timing

import "time"

// Duration aliases time.Duration; virtual nanoseconds.
type Duration = time.Duration

func us(f float64) Duration { return Duration(f * float64(time.Microsecond)) }

// NIC models an RDMA network card and its link.
type NIC struct {
	Name string

	// One-sided verbs.
	ReadBase    Duration // RTT of a small one-sided READ
	WritePerOp  Duration // extra for one-sided WRITE vs READ
	WirePerByte Duration // RTT increase per payload byte (FDR link + PCIe)

	// Two-sided verbs (Send/Recv), transport part of an RPC.
	SendRecvBase Duration

	// Inbound processing engine: occupancy per request, limits aggregate
	// one-sided throughput (Fig 12's RDMA plateau).
	EngineSvc     Duration
	EnginePerByte Duration

	// Memory translation table cache on the NIC. Uniform access over many
	// pages thrashes it (Fig 12 zipf>uniform, Fig 14 fragmentation gap).
	MTTCacheEntries int
	MTTMissLatency  Duration // added to the request RTT on a miss
	MTTMissEngine   Duration // added engine occupancy on a miss

	// Remapping-related host/NIC costs (Fig 8, Fig 15).
	Mmap         Duration // mmap of a remapped virtual block (per call)
	MmapPerPage  Duration // additional per page
	ReregBase    Duration // fixed part of ibv_rereg_mr
	ReregPerPage Duration
	ODPMiss      Duration // first access to an ODP-invalidated page
	AdviseMR     Duration // ibv_advise_mr prefetch per call
	HasODP       bool     // ConnectX-3 has no ODP support
}

// CPU models the host processor for worker/allocator activity.
type CPU struct {
	Name string

	// Inter-thread messaging: block-collection broadcast (Fig 15 left) and
	// pointer-correction hops (§3.2.1). Collection(n) = CollectBase +
	// CollectPerThread*(n-1).
	CollectBase      Duration
	CollectPerThread Duration
	HopLatency       Duration // one inter-thread message hop

	// RPC worker costs: Handle is on the request's critical path, Post is
	// the remaining busy time (polling, batching, reply bookkeeping) that
	// bounds worker-pool capacity but not single-request latency.
	WorkerHandle Duration
	WorkerPost   Duration

	// Memory work.
	ScanPerSlot     Duration // block scan, per slot inspected
	MergePerObject  Duration // metadata hash merge during compaction
	LockPerObject   Duration // lock/unlock objects under compaction
	VersionPerLine  Duration // client-side cacheline version check
	ChecksumPerByte Duration // client-side CRC check (checksum mode)
	AllocWork       Duration // Alloc/Free handler work beyond base RPC
	BlockRefill     Duration // extra when the thread-local allocator refills
	ReleaseWork     Duration // ReleasePtr handler work
	ClientLoop      Duration // client-side per-op loop overhead (Fig 11)
}

// Model bundles one NIC and one CPU plus system-wide constants.
type Model struct {
	NIC NIC
	CPU CPU

	// TCPBase is the IPoIB TCP RTT the paper quotes for reference.
	TCPBase Duration
}

// ConnectX3 reflects the evaluation cluster's default card.
func ConnectX3() NIC {
	return NIC{
		Name:            "ConnectX-3",
		ReadBase:        us(1.7),
		WritePerOp:      us(0.1),
		WirePerByte:     Duration(1), // ~1 ns/B RTT: 2 KiB reads stay under 4 µs (Fig 9)
		SendRecvBase:    us(2.8),
		EngineSvc:       us(0.45),
		EnginePerByte:   1, // 1 ns/B engine occupancy
		MTTCacheEntries: 4096,
		MTTMissLatency:  us(1.2),
		MTTMissEngine:   us(0.12),
		Mmap:            us(2.1),
		MmapPerPage:     us(0.25),
		ReregBase:       us(55),
		ReregPerPage:    us(45),
		ODPMiss:         0,
		AdviseMR:        0,
		HasODP:          false,
	}
}

// ConnectX5 is the newer card used for the Fig 8 remapping study.
func ConnectX5() NIC {
	n := ConnectX3()
	n.Name = "ConnectX-5"
	n.ReregBase = us(2.0)
	n.ReregPerPage = us(7.0)
	n.ODPMiss = us(63)
	n.AdviseMR = us(4.5)
	n.HasODP = true
	return n
}

// IntelXeon matches the E5-2630 v3 cluster nodes.
func IntelXeon() CPU {
	return CPU{
		Name:             "Intel Xeon E5-2630 v3",
		CollectBase:      us(7.0),
		CollectPerThread: us(1.6),
		HopLatency:       us(1.5),
		WorkerHandle:     us(0.7),
		WorkerPost:       us(10.7),
		ScanPerSlot:      Duration(12),
		MergePerObject:   Duration(60),
		LockPerObject:    Duration(30),
		VersionPerLine:   Duration(4),
		ChecksumPerByte:  1, // ~1 ns/B software CRC-32
		AllocWork:        us(0.5),
		BlockRefill:      us(5.0),
		ReleaseWork:      us(0.3),
		ClientLoop:       us(0.9),
	}
}

// AMDEpyc matches the EPYC 7742 nodes used in Fig 15 (left).
func AMDEpyc() CPU {
	c := IntelXeon()
	c.Name = "AMD EPYC 7742"
	c.CollectBase = us(0.5)
	c.CollectPerThread = us(1.9)
	c.HopLatency = us(0.4)
	return c
}

// Default is the paper's main configuration: ConnectX-3 + Intel Xeon.
func Default() Model {
	return Model{NIC: ConnectX3(), CPU: IntelXeon(), TCPBase: us(17)}
}

// WithNIC returns a copy of m using the given NIC.
func (m Model) WithNIC(n NIC) Model { m.NIC = n; return m }

// WithCPU returns a copy of m using the given CPU.
func (m Model) WithCPU(c CPU) Model { m.CPU = c; return m }

// ReadRTT is the round-trip latency of a one-sided READ of size bytes,
// excluding MTT effects and consistency checks.
func (n NIC) ReadRTT(size int) Duration {
	return n.ReadBase + Duration(size)*n.WirePerByte
}

// RPCRTT is the transport round-trip of an RPC carrying size payload bytes.
func (n NIC) RPCRTT(size int) Duration {
	return n.SendRecvBase + Duration(size)*n.WirePerByte
}

// EngineTime is the inbound-engine occupancy of a one-sided op.
func (n NIC) EngineTime(size int) Duration {
	return n.EngineSvc + Duration(size)*n.EnginePerByte
}

// Rereg is the latency of re-registering a region of pages pages.
func (n NIC) Rereg(pages int) Duration {
	return n.ReregBase + Duration(pages)*n.ReregPerPage
}

// MmapCost is the latency of (re)mapping a virtual region of pages pages.
func (n NIC) MmapCost(pages int) Duration {
	return n.Mmap + Duration(pages-1)*n.MmapPerPage
}

// Collection returns the block-collection broadcast latency across threads
// worker threads (Fig 15, left).
func (c CPU) Collection(threads int) Duration {
	if threads <= 1 {
		return 0
	}
	return c.CollectBase + Duration(threads-1)*c.CollectPerThread
}

// VersionCheck is the client-side cost of verifying cacheline versions for
// an object of size bytes (64-byte cachelines).
func (c CPU) VersionCheck(size int) Duration {
	lines := (size + 63) / 64
	return Duration(lines) * c.VersionPerLine
}

// Copy is the cost of copying size bytes during compaction.
func (c CPU) Copy(size int) Duration {
	// ~10 GB/s effective copy bandwidth.
	return Duration(size) / 10
}
