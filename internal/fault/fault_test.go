package fault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client end and the raw server end of a TCP
// loopback connection.
func pipePair(t *testing.T, in *Injector) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cli.Close(); r.c.Close() })
	return in.WrapConn(cli), r.c
}

func TestResetAfterWrites(t *testing.T) {
	in := NewInjector(1, Plan{ResetAfterWrites: 3})
	cli, _ := pipePair(t, in)
	for i := 0; i < 2; i++ {
		if _, err := cli.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := cli.Write([]byte("boom")); err == nil {
		t.Fatal("third write survived a scripted reset")
	}
	// The connection stays dead.
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
	if got := in.Stats().Resets; got < 1 {
		t.Fatalf("resets = %d, want >= 1", got)
	}
}

func TestCorruptWriteFlipsOneByte(t *testing.T) {
	in := NewInjector(7, Plan{CorruptWrite: 1})
	cli, srv := pipePair(t, in)
	payload := []byte("all good here")
	if _, err := cli.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range payload {
		if payload[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted %d bytes, want exactly 1 (%q vs %q)", diff, payload, got)
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(payload, []byte("all good here")) {
		t.Fatal("injector mutated the caller's buffer")
	}
}

func TestTruncateWrite(t *testing.T) {
	in := NewInjector(3, Plan{TruncateWrite: 1})
	cli, srv := pipePair(t, in)
	if _, err := cli.Write(bytes.Repeat([]byte{0xAA}, 10)); err == nil {
		t.Fatal("truncated write reported success")
	}
	got, _ := io.ReadAll(srv)
	if len(got) != 5 {
		t.Fatalf("server saw %d bytes, want the truncated 5", len(got))
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, []int) {
		in := NewInjector(99, Plan{WriteResetRate: 0.2})
		cli, _ := pipePair(t, in)
		var failedAt []int
		for i := 0; i < 50; i++ {
			if _, err := cli.Write([]byte("frame")); err != nil {
				failedAt = append(failedAt, i)
				break // connection is dead after a reset
			}
		}
		return in.Stats(), failedAt
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across seeded runs: %+v vs %+v", s1, s2)
	}
	if len(f1) != len(f2) || (len(f1) > 0 && f1[0] != f2[0]) {
		t.Fatalf("fault positions diverged: %v vs %v", f1, f2)
	}
}

func TestDisable(t *testing.T) {
	in := NewInjector(1, Plan{ResetAfterWrites: 1})
	in.Disable()
	cli, _ := pipePair(t, in)
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatalf("disabled injector still injected: %v", err)
	}
}

func TestLatencyDelays(t *testing.T) {
	in := NewInjector(5, Plan{Latency: 20 * time.Millisecond})
	cli, _ := pipePair(t, in)
	start := time.Now()
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write took %v, want >= ~20ms of injected latency", d)
	}
}
