// Package fault is a deterministic, seedable fault-injection layer for the
// TCP transport and the simulated RNIC. It wraps net.Conn / net.Listener
// with scriptable failure scenarios — connection resets after N operations,
// byte truncation, frame corruption, added latency — and forces QP breaks
// through the rnic error-state machinery. All randomness comes from one
// seeded RNG, so a failing scenario replays exactly from its seed.
//
// The unit of scripting is one Read or Write call on the wrapped
// connection. The transport's scatter-gather writer issues one Write per
// iovec on a wrapped conn (net.Buffers falls back to per-vector writes off
// *net.TCPConn): small frames inline into the header arena and coalesce
// into one Write — the channel-kind handshake byte folds into the first
// one — while a large frame body is its own Write, so counter triggers can
// land mid-batch, between a frame's header and its body. Reads go through
// a buffered reader, so one Read call may deliver many frames. In a
// single-request-at-a-time, small-frame scenario, "reset after frame N" is
// therefore still expressed as reset after N write ops.
//
// Typical use, client side:
//
//	inj := fault.NewInjector(42, fault.Plan{ResetAfterWrites: 6})
//	conn, _ := transport.DialOptions(addr, transport.Options{Dialer: inj.Dial})
//
// and server side:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	srv := transport.Serve(inj.WrapListener(ln), rpcSrv)
package fault

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"corm/internal/rnic"
)

// Plan scripts the failure behaviour of every connection wrapped by one
// Injector. Counter-based triggers fire once per connection; rate-based
// triggers draw from the injector's seeded RNG on every operation. The zero
// value injects nothing.
type Plan struct {
	// ResetAfterWrites closes the connection with an error on the Nth
	// Write call (1-based). 0 disables.
	ResetAfterWrites int
	// ResetAfterReads closes the connection with an error on the Nth
	// Read call. 0 disables.
	ResetAfterReads int
	// TruncateWrite makes the Nth Write send only half its bytes and then
	// close the connection — the mid-frame partial write that poisons
	// unframed peers. 0 disables.
	TruncateWrite int
	// CorruptWrite flips one RNG-chosen byte in the Nth Write. 0 disables.
	CorruptWrite int
	// WriteResetRate / ReadResetRate reset the connection with the given
	// per-operation probability.
	WriteResetRate float64
	ReadResetRate  float64
	// Latency delays every operation by Latency plus a uniform random
	// fraction of Jitter.
	Latency time.Duration
	Jitter  time.Duration
}

// Stats counts the faults an injector has fired, for assertions and for
// verifying that two runs with the same seed replay the same trace.
type Stats struct {
	Resets      int
	Truncations int
	Corruptions int
	Delays      int
}

// Injector hands out fault-wrapped connections that follow one Plan. The
// seeded RNG is shared (and locked) across all wrapped connections, so a
// single-goroutine workload replays exactly; concurrent workloads replay
// fault *kinds* deterministically but may interleave differently.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plan  Plan
	stats Stats

	disabled bool
}

// NewInjector builds an injector whose randomness derives only from seed.
func NewInjector(seed int64, plan Plan) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), plan: plan}
}

// SetPlan swaps the scenario for subsequently wrapped connections (already
// wrapped connections keep their per-connection counters but see the new
// plan's triggers).
func (in *Injector) SetPlan(p Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plan = p
}

// Disable stops all injection (existing and future connections pass
// through untouched) — used to end a chaos window.
func (in *Injector) Disable() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disabled = true
}

// Enable re-arms the injector after Disable.
func (in *Injector) Enable() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disabled = false
}

// Stats snapshots the fired-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Dial is a transport.Options.Dialer that wraps the dialed connection.
func (in *Injector) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c), nil
}

// WrapConn wraps one connection with this injector's plan.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, in: in}
}

// WrapListener wraps a listener so every accepted connection is wrapped.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

// BreakQPs forces every live QP on the NIC into the error state via the
// rnic fault hook — a fabric event. The transport maps subsequent one-sided
// reads through those QPs to ErrDMABroken until clients reconnect.
func (in *Injector) BreakQPs(n *rnic.NIC) {
	in.mu.Lock()
	disabled := in.disabled
	in.mu.Unlock()
	if disabled {
		return
	}
	n.BreakAllQPs()
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// faultConn applies the plan around a real connection. Counters are
// per-connection; randomness and stats live on the shared injector.
type faultConn struct {
	net.Conn
	in *Injector

	mu     sync.Mutex
	writes int
	reads  int
	dead   bool
}

// errInjected is what a scripted reset surfaces as. It deliberately looks
// like a peer reset, not a special error: production code must classify it
// by behaviour, not by type.
type errInjected struct{}

func (errInjected) Error() string { return "fault: injected connection reset" }

// decideWrite consults the plan for the current write op. It returns the
// possibly modified buffer, a delay to apply, and whether to kill the
// connection (and after how many bytes, -1 meaning write everything first).
func (c *faultConn) decideWrite(b []byte) (out []byte, delay time.Duration, kill bool, keep int) {
	in := c.in
	in.mu.Lock()
	defer in.mu.Unlock()
	c.writes++
	keep = -1
	if in.disabled {
		return b, 0, false, keep
	}
	plan := in.plan
	delay = plan.delay(in)
	if delay > 0 {
		in.stats.Delays++
	}
	if plan.TruncateWrite > 0 && c.writes == plan.TruncateWrite && len(b) > 0 {
		in.stats.Truncations++
		return b, delay, true, len(b) / 2
	}
	if plan.ResetAfterWrites > 0 && c.writes >= plan.ResetAfterWrites {
		in.stats.Resets++
		return b, delay, true, 0
	}
	if plan.WriteResetRate > 0 && in.rng.Float64() < plan.WriteResetRate {
		in.stats.Resets++
		return b, delay, true, 0
	}
	if plan.CorruptWrite > 0 && c.writes == plan.CorruptWrite && len(b) > 0 {
		in.stats.Corruptions++
		out = append([]byte(nil), b...)
		out[in.rng.Intn(len(out))] ^= 0xFF
		return out, delay, false, keep
	}
	return b, delay, false, keep
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, errInjected{}
	}
	out, delay, kill, keep := c.decideWrite(b)
	if delay > 0 {
		time.Sleep(delay)
	}
	if kill {
		n := 0
		if keep > 0 {
			n, _ = c.Conn.Write(out[:keep])
		}
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return n, errInjected{}
	}
	return c.Conn.Write(out)
}

func (c *faultConn) decideRead() (delay time.Duration, kill bool) {
	in := c.in
	in.mu.Lock()
	defer in.mu.Unlock()
	c.reads++
	if in.disabled {
		return 0, false
	}
	plan := in.plan
	delay = plan.delay(in)
	if delay > 0 {
		in.stats.Delays++
	}
	if plan.ResetAfterReads > 0 && c.reads >= plan.ResetAfterReads {
		in.stats.Resets++
		return delay, true
	}
	if plan.ReadResetRate > 0 && in.rng.Float64() < plan.ReadResetRate {
		in.stats.Resets++
		return delay, true
	}
	return delay, false
}

func (c *faultConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, errInjected{}
	}
	delay, kill := c.decideRead()
	if delay > 0 {
		time.Sleep(delay)
	}
	if kill {
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return 0, errInjected{}
	}
	return c.Conn.Read(b)
}

// delay computes the per-op latency under the injector lock.
func (p Plan) delay(in *Injector) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(in.rng.Int63n(int64(p.Jitter)))
	}
	return d
}
