// Package corm is a Go reproduction of CoRM (Compactable Remote Memory
// over RDMA, SIGMOD 2021): a distributed shared memory system that serves
// one-sided RDMA reads *and* compacts fragmented memory without breaking
// client pointers or RDMA connections.
//
// Since real RDMA hardware is unavailable to a pure-Go library, the RDMA
// substrate (RNIC with MTT, reliable QPs, ODP, registration keys) and the
// physical page layer (memfd-style frames, remappable page tables) are
// simulated in software with timing models calibrated to the paper; the
// CoRM algorithms themselves — the two-level allocator, the ID-based
// probabilistic compaction, pointer correction, and virtual address reuse
// — are fully functional. See DESIGN.md for the substitution map.
//
// # Quick start
//
//	srv, _ := corm.NewServer(corm.DefaultConfig())
//	defer srv.Close()
//	cli, _ := srv.ConnectLocal()
//	addr, _ := cli.Alloc(64)
//	cli.Write(&addr, payload)
//	cli.DirectRead(&addr, buf)  // one-sided read, no server CPU
//	srv.Compact()               // clients keep their pointers
//
// To run over TCP, use srv.ListenAndServe and corm.Connect.
package corm

import (
	"time"

	"corm/internal/client"
	"corm/internal/cluster"
	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/timing"
	"corm/internal/transport"
)

// Re-exported core types. Addr is the 128-bit CoRM pointer of Table 2.
type (
	Addr            = core.Addr
	Config          = core.Config
	Strategy        = core.Strategy
	RemapStrategy   = core.RemapStrategy
	CorrectionMode  = core.CorrectionMode
	CompactOptions  = core.CompactOptions
	CompactReport   = core.CompactReport
	CompactPlan     = core.CompactPlan
	MergePair       = core.MergePair
	Compactor       = core.Compactor
	CompactorConfig = core.CompactorConfig
	Policy          = core.Policy
	ThresholdPolicy = core.ThresholdPolicy
	AdaptivePolicy  = core.AdaptivePolicy
	StoreStats      = core.Stats
)

// Occ wraps an occupancy fraction for CompactOptions.MaxOccupancy (a
// pointer so an explicit 0 is distinguishable from the 0.9 default).
func Occ(v float64) *float64 { return core.Occ(v) }

// Compaction strategies (§3.1.2, §4.4).
const (
	StrategyNone   = core.StrategyNone
	StrategyCoRM   = core.StrategyCoRM
	StrategyCoRM0  = core.StrategyCoRM0
	StrategyMesh   = core.StrategyMesh
	StrategyHybrid = core.StrategyHybrid
)

// RDMA remapping strategies (§3.5).
const (
	RemapRereg       = core.RemapRereg
	RemapODP         = core.RemapODP
	RemapODPPrefetch = core.RemapODPPrefetch
)

// FlagIndirect marks a pointer the library had to correct (§3.3: "CoRM
// always notifies the user if it uses an old pointer").
const FlagIndirect = core.FlagIndirectObserved

// ConsistencyMode selects the one-sided read validation scheme (§4.2.1).
type ConsistencyMode = core.ConsistencyMode

// One-sided consistency schemes.
const (
	ConsistencyVersions = core.ConsistencyVersions
	ConsistencyChecksum = core.ConsistencyChecksum
)

// AutoTuner recommends per-class compaction labels (the §4.4 future-work
// auto-labeling strategy). See core.NewAutoTuner.
type AutoTuner = core.AutoTuner

// NewAutoTuner builds a class-labeling tuner over a server's store and
// attaches it, so every alloc/free feeds its churn counters.
func NewAutoTuner(srv *Server) *AutoTuner {
	t := core.NewAutoTuner(srv.Store())
	srv.Store().AttachTuner(t)
	return t
}

// Sentinel errors clients observe.
var (
	ErrNotFound     = core.ErrNotFound
	ErrWrongObject  = core.ErrWrongObject
	ErrInconsistent = core.ErrInconsistent
	ErrCompacting   = core.ErrCompacting
	ErrNoClass      = core.ErrNoClass
)

// DefaultConfig is the paper's main setup: 8 workers, 4 KiB blocks, 16-bit
// object IDs, ODP-prefetch remapping on a ConnectX-5, data-backed blocks.
func DefaultConfig() Config {
	return Config{
		Workers:    8,
		BlockBytes: 4096,
		Strategy:   core.StrategyCoRM,
		IDBits:     16,
		DataBacked: true,
		Remap:      core.RemapODPPrefetch,
		Model:      timing.Default().WithNIC(timing.ConnectX5()),
	}
}

// Server is one CoRM node: the store, its RPC worker pool, optionally a
// TCP listener, and optionally a background compactor.
type Server struct {
	store     *core.Store
	rpc       *rpc.Server
	tcp       *transport.Server
	compactor *core.Compactor
}

// serverOptions collects construction-time settings: config edits run
// before the store is built (so options can change Config fields like the
// memory budget), attach hooks after.
type serverOptions struct {
	cfgEdits []func(*Config)
	attach   func(*Server)
}

// ServerOption configures a Server at construction.
type ServerOption func(*serverOptions)

// WithBackgroundCompaction starts a background compactor on the node with
// the given service configuration (zero value = 50ms pace, threshold
// policy). The compactor stops when the server closes.
func WithBackgroundCompaction(cfg CompactorConfig) ServerOption {
	return func(o *serverOptions) {
		o.attach = func(s *Server) {
			s.compactor = core.NewCompactor(s.store, cfg)
		}
	}
}

// WithAdaptiveCompaction starts a background compactor driven by an
// AutoTuner-backed adaptive policy (§4.4 auto-labeling): hot classes are
// skipped, cold classes compacted aggressively, conflict-saturated classes
// back off. The tuner is attached to the store's alloc/free path.
func WithAdaptiveCompaction(cfg CompactorConfig) ServerOption {
	return func(o *serverOptions) {
		o.attach = func(s *Server) {
			tuner := core.NewAutoTuner(s.store)
			s.store.AttachTuner(tuner)
			cfg.Policy = core.NewAdaptivePolicy(tuner, cfg.MaxBlocks)
			s.compactor = core.NewCompactor(s.store, cfg)
		}
	}
}

// WithMemoryBudget caps the node's resident physical memory at bytes.
// Under pressure, cold blocks spill to the configured tier (compressed
// in-memory by default — see WithTier) and fault back in on access,
// letting the node oversubscribe RAM.
func WithMemoryBudget(bytes int64) ServerOption {
	return func(o *serverOptions) {
		o.cfgEdits = append(o.cfgEdits, func(c *Config) { c.MemBudgetBytes = bytes })
	}
}

// WithTier selects the spill backend for evicted blocks: "compressed"
// (in-memory deflate), "disk" or "disk:<dir>", or "off".
func WithTier(spec string) ServerOption {
	return func(o *serverOptions) {
		o.cfgEdits = append(o.cfgEdits, func(c *Config) { c.TierSpec = spec })
	}
}

// NewServer builds and starts a node (workers running, not yet listening).
func NewServer(cfg Config, opts ...ServerOption) (*Server, error) {
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	for _, edit := range o.cfgEdits {
		edit(&cfg)
	}
	store, err := core.NewStore(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, rpc: rpc.NewServer(store)}
	if o.attach != nil {
		o.attach(s)
	}
	if s.compactor != nil {
		s.compactor.Start()
	}
	return s, nil
}

// Compactor returns the background compaction service, or nil if the
// server was built without one.
func (s *Server) Compactor() *Compactor { return s.compactor }

// Store exposes the underlying store for direct embedding, experiments,
// and compaction control.
func (s *Server) Store() *core.Store { return s.store }

// ListenAndServe starts serving the CoRM protocol on a TCP address
// (e.g. "127.0.0.1:7170"). It returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ts, err := transport.Listen(addr, s.rpc)
	if err != nil {
		return "", err
	}
	s.tcp = ts
	return ts.Addr(), nil
}

// ConnectLocal returns an in-process client context.
func (s *Server) ConnectLocal() (*Client, error) {
	return client.NewLocal(s.rpc)
}

// Compact runs the compaction policy across all size classes whose
// fragmentation ratio exceeds the threshold, with worker 0 as leader.
func (s *Server) Compact() CompactReport {
	return s.store.CompactAll(0, nil)
}

// CompactClass compacts one size class explicitly.
func (s *Server) CompactClass(opts CompactOptions) CompactReport {
	return s.store.CompactClass(opts)
}

// ActiveBytes reports the node's active physical memory.
func (s *Server) ActiveBytes() int64 { return s.store.ActiveBytes() }

// Stats snapshots store counters.
func (s *Server) Stats() StoreStats { return s.store.Stats() }

// Close shuts the node down, draining the background compactor first and
// releasing tiering resources (disk spill files) last.
func (s *Server) Close() {
	if s.compactor != nil {
		s.compactor.Stop()
	}
	if s.tcp != nil {
		s.tcp.Close()
	}
	s.rpc.Close()
	s.store.Close()
}

// Client is a CoRM client context implementing the Table 2 API, plus the
// batched extensions: MultiRead/MultiWrite/MultiAlloc/MultiFree pack many
// operations into one round trip, and ReadAsync returns a Future whose
// reads coalesce automatically.
type Client = client.Ctx

// OpResult is the per-sub-operation outcome of a batched (Multi*) call.
type OpResult = client.OpResult

// Future resolves to the outcome of one asynchronous read (Client.ReadAsync).
type Future = client.Future

// Near-data compute (server-side pushdown) types: ScanWhere matches, RMW
// batch operations and results, and the future returned by FetchAddAsync.
type (
	ScanMatch    = client.ScanMatch
	RMWOp        = client.RMWOp
	RMWResult    = client.RMWResult
	AtomicFuture = client.AtomicFuture
)

// RMW operation kinds for Client.RMW.
const (
	RMWCas       = client.RMWCas
	RMWFetchAdd  = client.RMWFetchAdd
	RMWCondWrite = client.RMWCondWrite
)

// ScanWhere predicates, evaluated server-side at a byte offset.
const (
	PredEq    = rpc.PredEq
	PredNe    = rpc.PredNe
	PredLtU64 = rpc.PredLtU64
	PredGtU64 = rpc.PredGtU64
)

// Conditional-write modes (Client.PutIf / PutIfAbsent use these under the
// hood; RMWOp.Mode takes them directly).
const (
	CondIfVersion = rpc.CondIfVersion
	CondIfAbsent  = rpc.CondIfAbsent
)

// ErrConflict reports a pushdown condition that did not hold: a CAS whose
// old value mismatched, a PutIf against a moved version, a PutIfAbsent on
// an already-written object. Nothing was applied.
var ErrConflict = core.ErrConflict

// ErrCorruption reports a memory-safety canary violation: a slot's guard
// bytes were overwritten (detected on read, free, or compaction copy when
// the store runs with Config.Canaries).
var ErrCorruption = core.ErrCorruption

// Connect opens a client context to a remote CoRM node over TCP.
func Connect(addr string) (*Client, error) {
	return client.CreateCtx(addr)
}

// Multi-node deployment: a Pool spans several CoRM nodes with least-loaded
// placement; KV adds rendezvous-hashed string keys on top, optionally
// replicated across each key's top-k rendezvous nodes with write-concern
// acks, ordered read failover, and read repair.
type (
	Pool              = cluster.Pool
	GlobalAddr        = cluster.GlobalAddr
	KV                = cluster.KV
	ReplicationConfig = cluster.ReplicationConfig
	ReplicaSet        = cluster.ReplicaSet
	Replicator        = cluster.Replicator
	ReplicatorConfig  = cluster.ReplicatorConfig
	RepairReport      = cluster.RepairReport
	NodeError         = cluster.NodeError
)

// Cluster-layer sentinel errors.
var (
	ErrNodeDown     = cluster.ErrNodeDown
	ErrWriteConcern = cluster.ErrWriteConcern
	ErrNoReplica    = cluster.ErrNoReplica
	ErrStaleReplica = cluster.ErrStaleReplica
	// ErrThrottled marks an operation shed by overload control — either
	// a per-tenant admission cap or a node's bounded request queue. It
	// is backpressure, not failure: back off and retry.
	ErrThrottled = cluster.ErrThrottled
)

// Overload-control types: per-tenant token-bucket admission and the
// client-side bucket primitive.
type (
	Admission     = cluster.Admission
	ThrottleError = cluster.ThrottleError
	TokenBucket   = client.TokenBucket
)

// NewAdmission builds an empty per-tenant admission controller; tenants
// without a configured cap are admitted unconditionally.
func NewAdmission() *Admission { return cluster.NewAdmission() }

// NewTokenBucket builds a client-side rate limiter admitting ratePerSec
// operations per second with the given burst. ratePerSec <= 0 means
// unlimited.
func NewTokenBucket(ratePerSec float64, burst int) *TokenBucket {
	return client.NewTokenBucket(ratePerSec, burst)
}

// DialCluster connects a pool to every node address.
func DialCluster(addrs []string) (*Pool, error) { return cluster.Dial(addrs) }

// NewKV builds a keyed store over a pool.
func NewKV(pool *Pool) *KV { return cluster.NewKV(pool) }

// NewReplicatedKV builds a keyed store that keeps k copies of every key
// on its top-k rendezvous nodes, acking writes after cfg.WriteConcern
// replica writes succeed and failing reads over down the replica set.
func NewReplicatedKV(pool *Pool, cfg ReplicationConfig) *KV {
	return cluster.NewReplicatedKV(pool, cfg)
}

// NewReplicator builds the background re-replication service for a
// replicated KV: a paced repair loop over the KV's under-replicated keys
// that wakes immediately when a down node's breaker closes. Call Start.
func NewReplicator(kv *KV, cfg ReplicatorConfig) *Replicator {
	return cluster.NewReplicator(kv, cfg)
}

// AsNodeError extracts the failing node's identity from a cluster error.
func AsNodeError(err error) (*NodeError, bool) { return cluster.AsNodeError(err) }

// CompactionLoop is a convenience helper: it runs srv.Compact every
// interval until the returned stop function is called.
func CompactionLoop(srv *Server, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				srv.Compact()
			}
		}
	}()
	return func() { close(done) }
}
