// Parallel throughput benchmarks for the client→transport→server→store hot
// path. Unlike the figure benchmarks (single-threaded, latency-oriented),
// these hammer one transport.Conn from many goroutines and report aggregate
// ops/sec — the property a pipelined, multiplexed transport is supposed to
// scale and a lock-stepped one cannot.
//
// Results before/after the multiplexing change are recorded in
// bench_results.txt.
package corm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"corm/internal/core"
	"corm/internal/rpc"
	"corm/internal/transport"
)

// benchNode starts a TCP-serving node and one client Conn against it.
func benchNode(b *testing.B) (*Server, *transport.Conn) {
	b.Helper()
	srv, err := NewServer(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		conn.Close()
		srv.Close()
	})
	return srv, conn
}

// benchAlloc allocates one object through the wire and fails the benchmark
// on any error.
func benchAlloc(b *testing.B, conn *transport.Conn, size int) core.Addr {
	b.Helper()
	resp, err := conn.Call(rpc.Request{Op: rpc.OpAlloc, Size: uint32(size)})
	if err != nil || resp.Status != rpc.StatusOK {
		b.Fatalf("alloc: %v %v", resp.Status, err)
	}
	return resp.Addr
}

// runGoroutines splits b.N operations across g goroutines and reports
// aggregate throughput.
func runGoroutines(b *testing.B, g int, op func(worker, i int) error) {
	b.Helper()
	b.ResetTimer()
	var wg sync.WaitGroup
	errCh := make(chan error, g)
	for w := 0; w < g; w++ {
		n := b.N / g
		if w < b.N%g {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := op(w, i); err != nil {
					errCh <- err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkRPCThroughputParallel measures RPC reads over one shared Conn at
// increasing client-goroutine counts. With one-outstanding-request framing
// the curve is flat; with multiplexing it scales.
func BenchmarkRPCThroughputParallel(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			_, conn := benchNode(b)
			addr := benchAlloc(b, conn, 64)
			runGoroutines(b, g, func(_, _ int) error {
				resp, err := conn.Call(rpc.Request{Op: rpc.OpRead, Addr: addr, Size: 64})
				if err != nil {
					return err
				}
				return resp.Status.Err()
			})
		})
	}
}

// BenchmarkDirectReadThroughputParallel measures emulated one-sided reads
// over one shared DMA channel at increasing goroutine counts.
func BenchmarkDirectReadThroughputParallel(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			_, conn := benchNode(b)
			addr := benchAlloc(b, conn, 64)
			stride := core.DataStride(64)
			bufs := make([][]byte, g)
			for i := range bufs {
				bufs[i] = make([]byte, stride)
			}
			runGoroutines(b, g, func(w, _ int) error {
				return conn.DirectRead(addr.RKey(), addr.VAddr(), bufs[w])
			})
		})
	}
}

// BenchmarkMixedReadWriteUnderCompaction drives 8 goroutines of mixed RPC
// reads and writes over one Conn while the server compacts the object's
// size class in a loop — the paper's headline scenario (traffic stays up
// during compaction), stressed through the full concurrent stack.
func BenchmarkMixedReadWriteUnderCompaction(b *testing.B) {
	srv, conn := benchNode(b)
	const g = 8
	addrs := make([]core.Addr, g)
	for i := range addrs {
		addrs[i] = benchAlloc(b, conn, 64)
	}
	payload := make([]byte, 64)
	stop := make(chan struct{})
	var compactWG sync.WaitGroup
	compactWG.Add(1)
	class := srv.Store().Allocator().Config().ClassFor(64)
	go func() {
		defer compactWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			// Paced like a real background compactor — back-to-back passes
			// would monopolize the core and measure compaction, not traffic.
			srv.CompactClass(CompactOptions{Class: class, Leader: 0, MaxOccupancy: Occ(1.0)})
		}
	}()
	runGoroutines(b, g, func(w, i int) error {
		a := addrs[w]
		var resp rpc.Response
		var err error
		if i%2 == 0 {
			resp, err = conn.Call(rpc.Request{Op: rpc.OpRead, Addr: a, Size: 64})
		} else {
			resp, err = conn.Call(rpc.Request{Op: rpc.OpWrite, Addr: a, Payload: payload})
		}
		if err != nil {
			return err
		}
		// Compaction-locked objects are a legal, retryable outcome here.
		if e := resp.Status.Err(); e != nil && !errors.Is(e, core.ErrCompacting) {
			return e
		}
		return nil
	})
	close(stop)
	compactWG.Wait()
}

// BenchmarkStoreReadParallel measures the store hot path directly (no
// transport): concurrent Read calls on one Store from g goroutines. With a
// global store mutex every read rendezvouses; with striped locks and atomic
// stats they proceed in parallel.
func BenchmarkStoreReadParallel(b *testing.B) {
	for _, g := range []int{1, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			s := benchStore(b, nil)
			var addrs [8]core.Addr
			for i := range addrs {
				r, err := s.AllocOn(i%s.Workers(), 64)
				if err != nil {
					b.Fatal(err)
				}
				addrs[i] = r.Addr
			}
			bufs := make([][]byte, g)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			runGoroutines(b, g, func(w, _ int) error {
				a := addrs[w%len(addrs)]
				_, err := s.Read(&a, bufs[w])
				return err
			})
		})
	}
}
